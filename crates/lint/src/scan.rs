//! A hand-rolled Rust token scanner.
//!
//! The scanner strips comments and string/char literals (so rule patterns
//! never fire on prose or payload text), produces line-accurate tokens, and
//! collects `// ecas-lint: allow(...)` directives found in line comments.
//!
//! It is intentionally *not* a full Rust lexer: it only needs to be precise
//! enough that identifier- and operator-level patterns (method calls,
//! indexing, comparisons, attribute groups) can be matched without false
//! positives from comments, doc examples or string payloads.

/// The coarse classification of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    /// An identifier or keyword (`foo`, `fn`, `r#async` → `async`).
    Ident,
    /// A numeric literal, kept verbatim (`42`, `1.5e-3`, `0xEC`).
    Number,
    /// Punctuation; multi-character operators are single tokens (`==`).
    Punct,
}

/// One scanned token with its 1-based source line.
#[derive(Debug, Clone)]
pub(crate) struct Token {
    /// Token classification.
    pub kind: Kind,
    /// Verbatim token text (for raw identifiers, without the `r#` prefix).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `text`.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == Kind::Ident && self.text == text
    }

    /// Whether this token is the punctuation `text`.
    #[must_use]
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == Kind::Punct && self.text == text
    }

    /// Whether this number literal is float-like (`1.0`, `2e9`, `3f64`).
    #[must_use]
    pub fn is_float_literal(&self) -> bool {
        self.kind == Kind::Number
            && !self.text.starts_with("0x")
            && !self.text.starts_with("0b")
            && !self.text.starts_with("0o")
            && (self.text.contains('.')
                || self.text.contains(['e', 'E'])
                || self.text.ends_with("f64")
                || self.text.ends_with("f32"))
    }
}

/// An `// ecas-lint: allow(rule, ..., reason = "...")` directive.
#[derive(Debug, Clone)]
pub(crate) struct Directive {
    /// 1-based line the directive comment sits on.
    pub line: u32,
    /// Rules the directive names.
    pub rules: Vec<String>,
    /// The mandatory justification, if present.
    pub reason: Option<String>,
    /// `true` when the comment shares its line with no code token, so the
    /// directive applies to the next code line instead of its own.
    pub standalone: bool,
    /// Parse error, if the directive could not be understood.
    pub malformed: Option<String>,
}

/// A string literal's content and position. Literals are stripped from the
/// token stream (so rule patterns never fire on payload text); the
/// workspace rules that *do* care about literal contents — the obs-name
/// registry — read them from this side table instead.
#[derive(Debug, Clone)]
pub(crate) struct StrLit {
    /// 1-based line the literal starts on.
    pub line: u32,
    /// Literal content, verbatim (escape sequences unprocessed).
    pub text: String,
    /// Index into `tokens` of the first token *after* the literal.
    /// Literals produce no token of their own, so this anchors them
    /// between `tokens[anchor - 1]` and `tokens[anchor]`.
    pub anchor: usize,
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub(crate) struct Scanned {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Lint directives found in comments, in source order.
    pub directives: Vec<Directive>,
    /// String literals in source order, anchored into `tokens`.
    pub strings: Vec<StrLit>,
}

/// Multi-character operators, longest first so matching can be greedy.
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "==", "!=", "<=", ">=", "::", "->", "=>", "&&", "||", "..", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// The comment prefix that introduces a lint directive.
const DIRECTIVE_PREFIX: &str = "ecas-lint:";

/// Scans `source`, producing tokens and directives.
#[must_use]
pub(crate) fn scan(source: &str) -> Scanned {
    Scanner::new(source).run()
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    line_has_code: bool,
    out: Scanned,
}

impl Scanner {
    fn new(source: &str) -> Self {
        Self {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            line_has_code: false,
            out: Scanned::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.line_has_code = false;
        }
        Some(c)
    }

    fn push(&mut self, kind: Kind, text: String, line: u32) {
        self.line_has_code = true;
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Scanned {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' if self.raw_or_byte_prefix() => {}
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident(),
                c if c.is_whitespace() => {
                    self.bump();
                }
                _ => self.punct(),
            }
        }
        self.out
    }

    /// Handles `r"..."`, `r#"..."#`, `br"..."`, `b"..."`, `b'x'` and raw
    /// identifiers `r#ident`. Returns `true` if it consumed anything.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c = self.peek(0);
        let mut offset = 1;
        if c == Some('b') {
            match self.peek(1) {
                Some('"') => {
                    self.bump();
                    self.string_literal();
                    return true;
                }
                Some('\'') => {
                    self.bump();
                    self.char_or_lifetime();
                    return true;
                }
                Some('r') => offset = 2,
                _ => return false,
            }
        }
        // `r` (or `br`) followed by hashes and a quote is a raw string;
        // `r#` followed by an identifier character is a raw identifier.
        let mut hashes = 0;
        while self.peek(offset + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(offset + hashes) {
            Some('"') => {
                for _ in 0..offset + hashes + 1 {
                    self.bump();
                }
                self.raw_string_tail(hashes);
                true
            }
            Some(id) if hashes == 1 && (id == '_' || id.is_alphabetic()) && c == Some('r') => {
                self.bump(); // r
                self.bump(); // #
                self.ident();
                true
            }
            _ => false,
        }
    }

    /// Consumes the body of a raw string until `"` followed by `hashes`
    /// `#` characters.
    fn raw_string_tail(&mut self, hashes: usize) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0;
                while seen < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    self.record_string(line, text);
                    return;
                }
                text.push('"');
                for _ in 0..seen {
                    text.push('#');
                }
            } else {
                text.push(c);
            }
        }
        self.record_string(line, text);
    }

    fn record_string(&mut self, line: u32, text: String) {
        self.out.strings.push(StrLit {
            line,
            text,
            anchor: self.out.tokens.len(),
        });
    }

    fn line_comment(&mut self) {
        let standalone = !self.line_has_code;
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // Strip `//`, `///`, `//!` prefixes.
        let body = text.trim_start_matches(['/', '!']).trim();
        if let Some(rest) = body.strip_prefix(DIRECTIVE_PREFIX) {
            let mut directive = parse_directive(rest.trim());
            directive.line = line;
            directive.standalone = standalone;
            self.out.directives.push(directive);
        }
    }

    fn block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return,
            }
        }
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.record_string(line, text);
    }

    /// Distinguishes char literals (`'a'`, `'\n'`) from lifetimes
    /// (`'static`). A quote followed by an escape or a single character
    /// and a closing quote is a char literal; otherwise a lifetime.
    fn char_or_lifetime(&mut self) {
        self.bump(); // '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(c) if c == '_' || c.is_alphabetic() => {
                // Could be 'x' (char) or 'xyz (lifetime).
                let mut len = 0;
                while matches!(self.peek(len), Some(i) if i == '_' || i.is_alphanumeric()) {
                    len += 1;
                }
                let is_char = self.peek(len) == Some('\'');
                for _ in 0..len {
                    self.bump();
                }
                if is_char {
                    self.bump(); // closing quote
                }
            }
            Some(_) => {
                // Any other single char literal like '3' or '['.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
            }
            None => {}
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let after_dot = matches!(self.out.tokens.last(), Some(t) if t.is_punct("."));
        while let Some(c) = self.peek(0) {
            let take = if c.is_alphanumeric() || c == '_' {
                true
            } else if c == '.' {
                // Only part of the number for `1.5`-style literals: the
                // next char must be a digit, we must not already hold a
                // dot, and `x.0.1` tuple chains stay punctuated.
                !after_dot
                    && !text.contains('.')
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
            } else if c == '+' || c == '-' {
                matches!(text.chars().last(), Some('e' | 'E')) && !text.starts_with("0x")
            } else {
                false
            };
            if !take {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Kind::Number, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Kind::Ident, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        for op in OPERATORS {
            if self.matches_str(op) {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                self.push(Kind::Punct, (*op).to_string(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(Kind::Punct, c.to_string(), line);
        }
    }

    fn matches_str(&self, s: &str) -> bool {
        s.chars()
            .enumerate()
            .all(|(i, c)| self.peek(i) == Some(c))
    }
}

/// Parses the payload of a directive comment, e.g.
/// `allow(panic-safety, reason = "segment index is ladder-validated")`.
/// Shared with the manifest scanner, which finds the same directives in
/// `Cargo.toml` `#` comments.
pub(crate) fn parse_directive(rest: &str) -> Directive {
    let mut directive = Directive {
        line: 0,
        rules: Vec::new(),
        reason: None,
        standalone: false,
        malformed: None,
    };
    let Some(args) = rest
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
    else {
        directive.malformed = Some(format!(
            "expected `allow(<rule>, reason = \"...\")`, found `{rest}`"
        ));
        return directive;
    };
    let Some(end) = args.rfind(')') else {
        directive.malformed = Some("unclosed `allow(` directive".to_string());
        return directive;
    };
    let body = &args[..end];

    // Split on top-level commas; the reason string may contain commas, so
    // track whether we are inside quotes.
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ',' if !in_quotes => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    items.push(current);

    for item in items {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if let Some(value) = item.strip_prefix("reason") {
            let value = value.trim_start();
            let Some(value) = value.strip_prefix('=') else {
                directive.malformed = Some("`reason` must be `reason = \"...\"`".to_string());
                return directive;
            };
            let value = value.trim();
            if value.len() >= 2 && value.starts_with('"') && value.ends_with('"') {
                let reason = value[1..value.len() - 1].trim().to_string();
                if reason.is_empty() {
                    directive.malformed = Some("empty `reason` string".to_string());
                    return directive;
                }
                directive.reason = Some(reason);
            } else {
                directive.malformed = Some("`reason` must be a quoted string".to_string());
                return directive;
            }
        } else {
            directive.rules.push(item.to_string());
        }
    }
    if directive.rules.is_empty() {
        directive.malformed = Some("directive names no rules".to_string());
    }
    directive
}

/// Returns the 1-based line ranges (inclusive) covered by `#[cfg(test)]`
/// items — test modules, functions or statements embedded in library
/// source. Rules skip findings on these lines.
#[must_use]
pub(crate) fn test_line_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let start_line = tokens[i].line;
            let mut j = skip_attr(tokens, i);
            // Skip any further attributes on the same item.
            while matches!(tokens.get(j), Some(t) if t.is_punct("#"))
                && matches!(tokens.get(j + 1), Some(t) if t.is_punct("["))
            {
                j = skip_attr(tokens, j);
            }
            // Find the item body `{ ... }`, or a `;` for brace-less items.
            let mut end_line = tokens.get(j).map_or(start_line, |t| t.line);
            while let Some(t) = tokens.get(j) {
                end_line = t.line;
                if t.is_punct(";") {
                    break;
                }
                if t.is_punct("{") {
                    let close = matching_close(tokens, j, "{", "}");
                    end_line = tokens.get(close).map_or(end_line, |t| t.line);
                    j = close;
                    break;
                }
                j += 1;
            }
            ranges.push((start_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Whether a `#[...]` attribute group starting at `i` mentions both `cfg`
/// and `test` (covers `#[cfg(test)]` and `#[cfg(all(test, ...))]`).
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    if !(matches!(tokens.get(i), Some(t) if t.is_punct("#"))
        && matches!(tokens.get(i + 1), Some(t) if t.is_punct("[")))
    {
        return false;
    }
    let close = matching_close(tokens, i + 1, "[", "]");
    let mut saw_cfg = false;
    let mut saw_test = false;
    for t in tokens.get(i + 2..close).unwrap_or(&[]) {
        saw_cfg |= t.is_ident("cfg");
        saw_test |= t.is_ident("test");
    }
    saw_cfg && saw_test
}

/// Given `#` at `i` and `[` at `i + 1`, returns the index just past the
/// closing `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    matching_close(tokens, i + 1, "[", "]") + 1
}

/// Index of the token closing the group opened at `open_idx`; saturates at
/// the last token when unbalanced.
#[must_use]
pub(crate) fn matching_close(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open_idx;
    while let Some(t) = tokens.get(j) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        scan(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let toks = texts("let x = \"unwrap()\"; // .unwrap()\n/* panic! */ y");
        assert_eq!(toks, ["let", "x", "=", ";", "y"]);
    }

    #[test]
    fn raw_strings_have_no_escapes() {
        let toks = texts(r####"let s = r#"a \" b"#; done"####);
        assert_eq!(toks, ["let", "s", "=", ";", "done"]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let toks = texts("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&"str".to_string()));
        assert!(!toks.contains(&"x'".to_string()));
    }

    #[test]
    fn float_literals_are_single_tokens() {
        let s = scan("a == 1.5e-3; b.0 == 2; 0..10");
        let nums: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["1.5e-3", "0", "2", "0", "10"]);
    }

    #[test]
    fn tuple_chains_stay_punctuated() {
        let s = scan("pair.0.1");
        let nums: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["0", "1"]);
    }

    #[test]
    fn operators_are_greedy() {
        let toks = texts("a != b == c .. d");
        assert_eq!(toks, ["a", "!=", "b", "==", "c", "..", "d"]);
    }

    #[test]
    fn directives_are_parsed() {
        let s = scan("x(); // ecas-lint: allow(panic-safety, reason = \"static data\")\n");
        assert_eq!(s.directives.len(), 1);
        let d = &s.directives[0];
        assert_eq!(d.rules, ["panic-safety"]);
        assert_eq!(d.reason.as_deref(), Some("static data"));
        assert!(!d.standalone);
        assert!(d.malformed.is_none());
    }

    #[test]
    fn standalone_directive_detected() {
        let s = scan("  // ecas-lint: allow(determinism, reason = \"calibration only\")\nfoo();");
        assert!(s.directives[0].standalone);
    }

    #[test]
    fn directive_without_reason_is_noted() {
        let s = scan("// ecas-lint: allow(panic-safety)\n");
        assert_eq!(s.directives[0].reason, None);
        assert!(s.directives[0].malformed.is_none());
    }

    #[test]
    fn malformed_directive_is_flagged() {
        let s = scan("// ecas-lint: allow panic-safety\n");
        assert!(s.directives[0].malformed.is_some());
    }

    #[test]
    fn string_literals_are_recorded_with_anchors() {
        let s = scan("r.add(\"sim/stalls\", 1);");
        // tokens: r . add ( , 1 ) ;   — the literal anchors at the `,`.
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].text, "sim/stalls");
        assert_eq!(s.strings[0].line, 1);
        assert!(s.tokens[s.strings[0].anchor].is_punct(","));
        assert!(s.tokens[s.strings[0].anchor - 1].is_punct("("));
    }

    #[test]
    fn raw_string_literals_are_recorded() {
        let s = scan(r####"let s = r#"a "quoted" b"#;"####);
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].text, "a \"quoted\" b");
    }

    #[test]
    fn cfg_test_mod_ranges() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let s = scan(src);
        let ranges = test_line_ranges(&s.tokens);
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn cfg_test_use_statement_is_bounded() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn later() { body(); }\n";
        let ranges = test_line_ranges(&scan(src).tokens);
        assert_eq!(ranges, vec![(1, 2)]);
    }
}
