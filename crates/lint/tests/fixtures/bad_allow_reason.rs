//! Fixture: allow directive without a reason does not suppress.
pub fn head(values: &[f64]) -> f64 {
    // ecas-lint: allow(panic-safety)
    values.first().copied().unwrap()
}
