//! Fixture: allow directive that suppresses nothing.
pub fn double(x: f64) -> f64 {
    // ecas-lint: allow(panic-safety, reason = "nothing here panics")
    x * 2.0
}
