//! Fixture: a bench binary reading the process arguments directly
//! instead of declaring its surface through `ecas_bench::cli::Cli`.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let _ = smoke;
}
