//! Fixture: panicking slice indexing.
pub fn second(values: &[f64]) -> f64 {
    values[1]
}
