//! Fixture: nondeterminism in simulation code.
use std::collections::HashMap;

pub fn lookup(map: &HashMap<u32, f64>, key: u32) -> f64 {
    map.get(&key).copied().unwrap_or(0.0)
}
