//! Fixture: wall-clock data inside a probe event payload.
pub fn report(probe: &dyn super::Probe, started: std::time::Instant) {
    probe.emit(&payload(started.elapsed()));
}
