//! Fixture: allocation patterns inside and outside hot loops.

pub fn hot_loop(xs: &[u32]) -> usize {
    let mut total = 0;
    for x in xs {
        let label = format!("x={x}");
        let copy = xs.to_vec();
        total += label.len() + copy.len();
    }
    total
}

pub fn cold_loop(xs: &[u32]) -> usize {
    let mut total = 0;
    for x in xs {
        let label = format!("x={x}");
        total += label.len();
    }
    total
}

pub fn hot_allowed(xs: &[u32]) -> usize {
    let mut total = 0;
    for x in xs {
        let label = format!("x={x}"); // ecas-lint: allow(hot-path-alloc, reason = "label built at most twice per session")
        total += label.len();
    }
    total
}
