//! Fixture: panicking calls in library code.
pub fn head(values: &[f64]) -> f64 {
    values.first().copied().unwrap()
}

pub fn must(opt: Option<u32>) -> u32 {
    opt.expect("value is present")
}
