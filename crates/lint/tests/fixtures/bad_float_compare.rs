//! Fixture: NaN-unsafe float comparisons.
pub fn is_unity(x: f64) -> bool {
    x == 1.0
}

pub fn larger(a: f64, b: f64) -> f64 {
    if a.partial_cmp(&b).unwrap() == std::cmp::Ordering::Greater {
        a
    } else {
        b
    }
}
