//! Fixture: pub items with and without external references.

pub struct Used;

pub struct Unused;

pub fn orphan() {}

// ecas-lint: allow(pub-surface, reason = "kept public for downstream scripts outside the workspace")
pub fn pardoned() {}
