//! Fixture: exempt crate that references alpha's `Used` type.

pub fn touch_alpha() -> &'static str {
    "Used"
}

pub struct Hidden;
