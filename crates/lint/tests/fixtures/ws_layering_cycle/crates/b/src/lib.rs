//! Fixture crate: the other half of a dependency cycle.

pub struct B;
