//! Fixture crate: half of a dependency cycle.

pub struct A;
