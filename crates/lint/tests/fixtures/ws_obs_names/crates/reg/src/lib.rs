//! Fixture registry crate.

pub mod names;
