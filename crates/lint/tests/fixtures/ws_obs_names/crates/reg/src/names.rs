//! Fixture metric-name registry: one `pub const` per line.

pub const GOOD_COUNTER: &str = "good/counter";
pub const STALE_COUNTER: &str = "stale/counter";
