//! Fixture: metric emission sites.

pub struct Probe;

impl Probe {
    pub fn add(&self, _name: &str, _v: u64) {}
}

pub fn run(p: &Probe) {
    p.add("good/counter", 1);
    p.add("rogue/counter", 1);
    p.add("pardoned/counter", 1); // ecas-lint: allow(obs-name-registry, reason = "fixture: justified off-registry name")
}
