//! Fixture: clean library code — deterministic collections, no panics,
//! justified escape hatch, total float ordering.
use std::collections::BTreeMap;

/// Returns the value for `key`, or zero.
pub fn lookup(map: &BTreeMap<u32, f64>, key: u32) -> f64 {
    map.get(&key).copied().unwrap_or(0.0)
}

/// Sorts ascending with a total order (NaN sorts last).
pub fn sort(values: &mut [f64]) {
    values.sort_by(f64::total_cmp);
}

/// A justified panic keeps its allow directive and a reason.
pub fn checked(opt: Option<u32>) -> u32 {
    // ecas-lint: allow(panic-safety, reason = "fixture: caller guarantees Some")
    opt.expect("caller guarantees Some")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let mut map = BTreeMap::new();
        map.insert(1u32, 2.0f64);
        assert_eq!(map.get(&1).copied().unwrap(), lookup(&map, 1));
    }
}
