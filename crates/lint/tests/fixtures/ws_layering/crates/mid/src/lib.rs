//! Fixture crate: the middle layer.

pub struct Mid;
