//! Fixture crate: depends on layers it is not sanctioned to touch.

pub struct Rogue;
