//! Fixture crate: the top layer.

pub struct Top;
