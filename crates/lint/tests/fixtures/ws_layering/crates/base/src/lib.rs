//! Fixture crate: the bottom layer.

pub struct Base;
