//! Fixture: raw floats carrying physical quantities.
pub struct Download {
    pub size_bytes: f64,
}

pub fn throughput(chunk_mbps: f64) -> f64 {
    chunk_mbps
}
