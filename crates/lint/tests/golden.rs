//! Golden-fixture tests: one bad snippet per rule asserting the rule and
//! line it fires on, one clean snippet asserting silence, and a self-check
//! that the workspace itself lints clean under the checked-in `lint.toml`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use ecas_lint::workspace::WorkspaceModel;
use ecas_lint::wsrules::{
    emitted_names, hot_path_fn_keys, hot_path_matches, registered_names, EmittedName,
    RegisteredName,
};
use ecas_lint::{lint_source, lint_workspace, load_config, Config, Severity};

/// Lints a fixture under `crate_name` with the built-in default config.
fn lint_fixture(crate_name: &str, fixture: &str) -> Vec<ecas_lint::Diagnostic> {
    lint_source(crate_name, fixture, fixture_source(fixture), &Config::default())
}

fn fixture_source(fixture: &str) -> &'static str {
    match fixture {
        "bad_determinism.rs" => include_str!("fixtures/bad_determinism.rs"),
        "bad_unit_safety.rs" => include_str!("fixtures/bad_unit_safety.rs"),
        "bad_panic_safety.rs" => include_str!("fixtures/bad_panic_safety.rs"),
        "bad_slice_indexing.rs" => include_str!("fixtures/bad_slice_indexing.rs"),
        "bad_float_compare.rs" => include_str!("fixtures/bad_float_compare.rs"),
        "bad_obs_purity.rs" => include_str!("fixtures/bad_obs_purity.rs"),
        "bad_allow_reason.rs" => include_str!("fixtures/bad_allow_reason.rs"),
        "bad_unused_allow.rs" => include_str!("fixtures/bad_unused_allow.rs"),
        "bad_bench_cli.rs" => include_str!("fixtures/bad_bench_cli.rs"),
        "clean.rs" => include_str!("fixtures/clean.rs"),
        other => panic!("unknown fixture {other}"),
    }
}

/// Asserts that `diags` contains a finding for `rule` at `line`.
fn assert_fires(diags: &[ecas_lint::Diagnostic], rule: &str, line: u32) {
    assert!(
        diags.iter().any(|d| d.rule == rule && d.line == line),
        "expected [{rule}] at line {line}, got: {diags:#?}"
    );
}

#[test]
fn determinism_fixture_fires() {
    let diags = lint_fixture("ecas-sim", "bad_determinism.rs");
    assert_fires(&diags, "determinism", 2); // use std::collections::HashMap
    assert_fires(&diags, "determinism", 4); // &HashMap<...> parameter
}

#[test]
fn determinism_is_scoped_to_simulation_crates() {
    // The same source in an out-of-scope crate raises nothing.
    let diags = lint_fixture("ecas-bench", "bad_determinism.rs");
    assert!(
        !diags.iter().any(|d| d.rule == "determinism"),
        "determinism should not apply to ecas-bench: {diags:#?}"
    );
}

#[test]
fn unit_safety_fixture_fires() {
    let diags = lint_fixture("ecas-sim", "bad_unit_safety.rs");
    assert_fires(&diags, "unit-safety", 3); // size_bytes: f64 field
    assert_fires(&diags, "unit-safety", 6); // chunk_mbps: f64 parameter
}

#[test]
fn unit_safety_exempts_the_newtype_crate() {
    let diags = lint_fixture("ecas-types", "bad_unit_safety.rs");
    assert!(
        !diags.iter().any(|d| d.rule == "unit-safety"),
        "ecas-types defines the newtypes and is exempt: {diags:#?}"
    );
}

#[test]
fn panic_safety_fixture_fires() {
    let diags = lint_fixture("ecas-sim", "bad_panic_safety.rs");
    assert_fires(&diags, "panic-safety", 3); // .unwrap()
    assert_fires(&diags, "panic-safety", 7); // .expect(..)
}

#[test]
fn panic_safety_skips_binary_targets() {
    let source = fixture_source("bad_panic_safety.rs");
    let diags = lint_source("ecas-bench", "crates/bench/src/bin/fig5.rs", source, &Config::default());
    assert!(
        !diags.iter().any(|d| d.rule == "panic-safety"),
        "a CLI main aborting with a message is its error path: {diags:#?}"
    );
}

#[test]
fn slice_indexing_is_an_opt_in_ratchet() {
    // Default severity is allow: nothing fires.
    let diags = lint_fixture("ecas-qoe", "bad_slice_indexing.rs");
    assert!(
        !diags.iter().any(|d| d.rule == "slice-indexing"),
        "slice-indexing defaults to allow: {diags:#?}"
    );

    // An opted-in crate denies it.
    let mut config = Config::default();
    config
        .overrides
        .entry("ecas-sim".to_string())
        .or_default()
        .insert("slice-indexing".to_string(), Severity::Deny);
    let source = fixture_source("bad_slice_indexing.rs");
    let diags = lint_source("ecas-sim", "bad_slice_indexing.rs", source, &config);
    assert_fires(&diags, "slice-indexing", 3); // values[1]
}

#[test]
fn float_compare_fixture_fires() {
    let diags = lint_fixture("ecas-sim", "bad_float_compare.rs");
    assert_fires(&diags, "float-compare", 3); // x == 1.0
    assert_fires(&diags, "float-compare", 7); // partial_cmp(..).unwrap()
}

#[test]
fn obs_purity_fixture_fires() {
    let diags = lint_fixture("ecas-obs", "bad_obs_purity.rs");
    assert_fires(&diags, "obs-purity", 3); // emit(.. elapsed ..)
}

#[test]
fn allow_without_reason_does_not_suppress() {
    let diags = lint_fixture("ecas-sim", "bad_allow_reason.rs");
    assert_fires(&diags, "allow-reason", 3); // the reason-less directive
    assert_fires(&diags, "panic-safety", 4); // still reported
}

#[test]
fn unused_allow_warns() {
    let diags = lint_fixture("ecas-sim", "bad_unused_allow.rs");
    let unused: Vec<_> = diags.iter().filter(|d| d.rule == "unused-allow").collect();
    assert_eq!(unused.len(), 1, "exactly one unused directive: {diags:#?}");
    assert_eq!(unused[0].line, 3);
    assert_eq!(unused[0].severity, Severity::Warn);
}

#[test]
fn bench_cli_fixture_fires_inside_bin_targets_only() {
    let source = fixture_source("bad_bench_cli.rs");
    let diags = lint_source(
        "ecas-bench",
        "crates/bench/src/bin/bad_bench_cli.rs",
        source,
        &Config::default(),
    );
    assert_fires(&diags, "bench-cli", 4); // std::env::args()

    // The same source outside bin/ (e.g. the shared parser) is exempt.
    let diags = lint_source("ecas-bench", "crates/bench/src/cli.rs", source, &Config::default());
    assert!(
        !diags.iter().any(|d| d.rule == "bench-cli"),
        "bench-cli must be scoped to crates/bench/src/bin/: {diags:#?}"
    );
}

#[test]
fn clean_fixture_is_silent() {
    let diags = lint_fixture("ecas-sim", "clean.rs");
    assert!(diags.is_empty(), "clean fixture must lint clean: {diags:#?}");
}

/// The real workspace root (two levels above the lint crate).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the workspace root")
        .to_path_buf()
}

/// Lints a fixture mini-workspace under `tests/fixtures/` with its own
/// checked-in `lint.toml`.
fn lint_fixture_workspace(name: &str) -> Vec<ecas_lint::Diagnostic> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let config = load_config(&root).expect("fixture lint.toml parses");
    lint_workspace(&root, &config).expect("fixture workspace scan succeeds")
}

/// The workspace itself must stay clean under the checked-in `lint.toml`:
/// this is the same gate CI runs, kept honest from inside the test suite.
#[test]
fn workspace_self_check_has_no_deny_findings() {
    let root = workspace_root();
    let config = load_config(&root).expect("lint.toml parses");
    let diags = lint_workspace(&root, &config).expect("workspace scan succeeds");
    let deny: Vec<_> = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .collect();
    assert!(deny.is_empty(), "workspace deny findings: {deny:#?}");
}

#[test]
fn layering_fixture_flags_unsanctioned_edge_and_honours_toml_allow() {
    let diags = lint_fixture_workspace("ws_layering");
    let layering: Vec<_> = diags.iter().filter(|d| d.rule == "layering").collect();
    assert_eq!(layering.len(), 1, "exactly the rogue->top edge: {diags:#?}");
    assert_eq!(layering[0].file, "crates/rogue/Cargo.toml");
    assert_eq!(layering[0].line, 5); // top = { path = "../top" }
    assert!(layering[0].message.contains("`top`"), "{:?}", layering[0]);
    // rogue -> base is suppressed by the trailing `# ecas-lint: allow(...)`
    // TOML comment; sanctioned edges (mid -> base, top -> mid) are silent.
    assert!(
        !diags.iter().any(|d| d.message.contains("`base`")),
        "{diags:#?}"
    );
}

#[test]
fn layering_cycle_fixture_reports_the_dependency_cycle() {
    let diags = lint_fixture_workspace("ws_layering_cycle");
    assert!(
        diags.iter().any(|d| d.rule == "layering"
            && d.message.contains("crate dependency cycle: a -> b -> a")),
        "{diags:#?}"
    );
}

#[test]
fn hot_path_alloc_fixture_fires_in_hot_loops_only() {
    let diags = lint_fixture_workspace("ws_hot_alloc");
    let hot: Vec<_> = diags.iter().filter(|d| d.rule == "hot-path-alloc").collect();
    assert_eq!(hot.len(), 2, "format! and to_vec in hot_loop: {diags:#?}");
    assert!(hot.iter().any(|d| d.line == 6 && d.message.contains("format!")));
    assert!(hot.iter().any(|d| d.line == 7 && d.message.contains("to_vec")));
    // cold_loop is not a configured hot path; hot_allowed carries a
    // trailing allow directive.
    assert!(hot.iter().all(|d| d.line < 13), "{diags:#?}");
}

#[test]
fn obs_names_fixture_round_trips_against_its_registry() {
    let diags = lint_fixture_workspace("ws_obs_names");
    let obs: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "obs-name-registry")
        .collect();
    // "good/counter" is registered: silent. "rogue/counter" is not: deny.
    // "pardoned/counter" is suppressed by its directive. "stale/counter"
    // is registered but never emitted: advisory warn on the registry line.
    let rogue: Vec<_> = obs
        .iter()
        .filter(|d| d.message.contains("\"rogue/counter\""))
        .collect();
    assert_eq!(rogue.len(), 1, "{diags:#?}");
    assert_eq!(rogue[0].severity, Severity::Deny);
    assert_eq!(rogue[0].file, "crates/emits/src/lib.rs");
    assert_eq!(rogue[0].line, 11);
    assert!(!obs.iter().any(|d| d.message.contains("\"good/counter\"")));
    assert!(!obs.iter().any(|d| d.message.contains("\"pardoned/counter\"")));
    let stale: Vec<_> = obs
        .iter()
        .filter(|d| d.message.contains("\"stale/counter\""))
        .collect();
    assert_eq!(stale.len(), 1, "{diags:#?}");
    assert_eq!(stale[0].severity, Severity::Warn);
    assert_eq!(stale[0].file, "crates/reg/src/names.rs");
    assert_eq!(stale[0].line, 4);
}

#[test]
fn pub_surface_fixture_flags_unreferenced_items_only() {
    let diags = lint_fixture_workspace("ws_pub_surface");
    let surface: Vec<_> = diags.iter().filter(|d| d.rule == "pub-surface").collect();
    // `Unused` and `orphan` have no references; `Used` is named by beta,
    // `pardoned` carries an allow, and beta itself is scope-exempt.
    assert_eq!(surface.len(), 2, "{diags:#?}");
    assert!(surface.iter().all(|d| d.file == "crates/alpha/src/lib.rs"));
    assert!(surface.iter().any(|d| d.message.contains("`Unused`")));
    assert!(surface.iter().any(|d| d.message.contains("`orphan`")));
}

/// Round trip on the real workspace: the checked-in registry is
/// well-formed (every entry a named const, values unique) and every
/// literal metric name still emitted anywhere is registered.
#[test]
fn obs_registry_round_trips_on_the_real_workspace() {
    let root = workspace_root();
    let config = load_config(&root).expect("lint.toml parses");
    let model = WorkspaceModel::load(&root, &config).expect("model loads");
    let registered: Vec<RegisteredName> =
        registered_names(&model, &config).expect("registry file is in the model");
    assert!(!registered.is_empty(), "registry must not be empty");
    let mut values = BTreeSet::new();
    for entry in &registered {
        assert!(
            entry.const_name.is_some(),
            "registry line {} is not a named const",
            entry.line
        );
        assert!(
            values.insert(entry.value.as_str()),
            "duplicate registry value {:?}",
            entry.value
        );
    }
    let emitted: Vec<EmittedName> = emitted_names(&model);
    for site in emitted {
        if site.file == config.obs_registry {
            continue;
        }
        assert!(
            values.contains(site.name.as_str()),
            "literal metric name {:?} at {}:{} is not registered",
            site.name,
            site.file,
            site.line
        );
    }
}

/// Every configured `[hot-paths]` pattern must still match at least one
/// real function, so renames cannot silently shrink the rule's scope.
#[test]
fn hot_path_patterns_match_real_functions() {
    let root = workspace_root();
    let config = load_config(&root).expect("lint.toml parses");
    assert!(!config.hot_paths.is_empty(), "hot-path scope must be configured");
    let model = WorkspaceModel::load(&root, &config).expect("model loads");
    let keys = hot_path_fn_keys(&model);
    for pattern in &config.hot_paths {
        assert!(
            keys.iter().any(|k| hot_path_matches(pattern, k)),
            "hot-path pattern `{pattern}` matches no function in the workspace"
        );
    }
}
