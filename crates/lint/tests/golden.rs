//! Golden-fixture tests: one bad snippet per rule asserting the rule and
//! line it fires on, one clean snippet asserting silence, and a self-check
//! that the workspace itself lints clean under the checked-in `lint.toml`.

use std::path::Path;

use ecas_lint::{lint_source, lint_workspace, load_config, Config, Severity};

/// Lints a fixture under `crate_name` with the built-in default config.
fn lint_fixture(crate_name: &str, fixture: &str) -> Vec<ecas_lint::Diagnostic> {
    lint_source(crate_name, fixture, fixture_source(fixture), &Config::default())
}

fn fixture_source(fixture: &str) -> &'static str {
    match fixture {
        "bad_determinism.rs" => include_str!("fixtures/bad_determinism.rs"),
        "bad_unit_safety.rs" => include_str!("fixtures/bad_unit_safety.rs"),
        "bad_panic_safety.rs" => include_str!("fixtures/bad_panic_safety.rs"),
        "bad_slice_indexing.rs" => include_str!("fixtures/bad_slice_indexing.rs"),
        "bad_float_compare.rs" => include_str!("fixtures/bad_float_compare.rs"),
        "bad_obs_purity.rs" => include_str!("fixtures/bad_obs_purity.rs"),
        "bad_allow_reason.rs" => include_str!("fixtures/bad_allow_reason.rs"),
        "bad_unused_allow.rs" => include_str!("fixtures/bad_unused_allow.rs"),
        "bad_bench_cli.rs" => include_str!("fixtures/bad_bench_cli.rs"),
        "clean.rs" => include_str!("fixtures/clean.rs"),
        other => panic!("unknown fixture {other}"),
    }
}

/// Asserts that `diags` contains a finding for `rule` at `line`.
fn assert_fires(diags: &[ecas_lint::Diagnostic], rule: &str, line: u32) {
    assert!(
        diags.iter().any(|d| d.rule == rule && d.line == line),
        "expected [{rule}] at line {line}, got: {diags:#?}"
    );
}

#[test]
fn determinism_fixture_fires() {
    let diags = lint_fixture("ecas-sim", "bad_determinism.rs");
    assert_fires(&diags, "determinism", 2); // use std::collections::HashMap
    assert_fires(&diags, "determinism", 4); // &HashMap<...> parameter
}

#[test]
fn determinism_is_scoped_to_simulation_crates() {
    // The same source in an out-of-scope crate raises nothing.
    let diags = lint_fixture("ecas-bench", "bad_determinism.rs");
    assert!(
        !diags.iter().any(|d| d.rule == "determinism"),
        "determinism should not apply to ecas-bench: {diags:#?}"
    );
}

#[test]
fn unit_safety_fixture_fires() {
    let diags = lint_fixture("ecas-sim", "bad_unit_safety.rs");
    assert_fires(&diags, "unit-safety", 3); // size_bytes: f64 field
    assert_fires(&diags, "unit-safety", 6); // chunk_mbps: f64 parameter
}

#[test]
fn unit_safety_exempts_the_newtype_crate() {
    let diags = lint_fixture("ecas-types", "bad_unit_safety.rs");
    assert!(
        !diags.iter().any(|d| d.rule == "unit-safety"),
        "ecas-types defines the newtypes and is exempt: {diags:#?}"
    );
}

#[test]
fn panic_safety_fixture_fires() {
    let diags = lint_fixture("ecas-sim", "bad_panic_safety.rs");
    assert_fires(&diags, "panic-safety", 3); // .unwrap()
    assert_fires(&diags, "panic-safety", 7); // .expect(..)
}

#[test]
fn panic_safety_skips_binary_targets() {
    let source = fixture_source("bad_panic_safety.rs");
    let diags = lint_source("ecas-bench", "crates/bench/src/bin/fig5.rs", source, &Config::default());
    assert!(
        !diags.iter().any(|d| d.rule == "panic-safety"),
        "a CLI main aborting with a message is its error path: {diags:#?}"
    );
}

#[test]
fn slice_indexing_is_an_opt_in_ratchet() {
    // Default severity is allow: nothing fires.
    let diags = lint_fixture("ecas-qoe", "bad_slice_indexing.rs");
    assert!(
        !diags.iter().any(|d| d.rule == "slice-indexing"),
        "slice-indexing defaults to allow: {diags:#?}"
    );

    // An opted-in crate denies it.
    let mut config = Config::default();
    config
        .overrides
        .entry("ecas-sim".to_string())
        .or_default()
        .insert("slice-indexing".to_string(), Severity::Deny);
    let source = fixture_source("bad_slice_indexing.rs");
    let diags = lint_source("ecas-sim", "bad_slice_indexing.rs", source, &config);
    assert_fires(&diags, "slice-indexing", 3); // values[1]
}

#[test]
fn float_compare_fixture_fires() {
    let diags = lint_fixture("ecas-sim", "bad_float_compare.rs");
    assert_fires(&diags, "float-compare", 3); // x == 1.0
    assert_fires(&diags, "float-compare", 7); // partial_cmp(..).unwrap()
}

#[test]
fn obs_purity_fixture_fires() {
    let diags = lint_fixture("ecas-obs", "bad_obs_purity.rs");
    assert_fires(&diags, "obs-purity", 3); // emit(.. elapsed ..)
}

#[test]
fn allow_without_reason_does_not_suppress() {
    let diags = lint_fixture("ecas-sim", "bad_allow_reason.rs");
    assert_fires(&diags, "allow-reason", 3); // the reason-less directive
    assert_fires(&diags, "panic-safety", 4); // still reported
}

#[test]
fn unused_allow_warns() {
    let diags = lint_fixture("ecas-sim", "bad_unused_allow.rs");
    let unused: Vec<_> = diags.iter().filter(|d| d.rule == "unused-allow").collect();
    assert_eq!(unused.len(), 1, "exactly one unused directive: {diags:#?}");
    assert_eq!(unused[0].line, 3);
    assert_eq!(unused[0].severity, Severity::Warn);
}

#[test]
fn bench_cli_fixture_fires_inside_bin_targets_only() {
    let source = fixture_source("bad_bench_cli.rs");
    let diags = lint_source(
        "ecas-bench",
        "crates/bench/src/bin/bad_bench_cli.rs",
        source,
        &Config::default(),
    );
    assert_fires(&diags, "bench-cli", 4); // std::env::args()

    // The same source outside bin/ (e.g. the shared parser) is exempt.
    let diags = lint_source("ecas-bench", "crates/bench/src/cli.rs", source, &Config::default());
    assert!(
        !diags.iter().any(|d| d.rule == "bench-cli"),
        "bench-cli must be scoped to crates/bench/src/bin/: {diags:#?}"
    );
}

#[test]
fn clean_fixture_is_silent() {
    let diags = lint_fixture("ecas-sim", "clean.rs");
    assert!(diags.is_empty(), "clean fixture must lint clean: {diags:#?}");
}

/// The workspace itself must stay clean under the checked-in `lint.toml`:
/// this is the same gate CI runs, kept honest from inside the test suite.
#[test]
fn workspace_self_check_has_no_deny_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the workspace root")
        .to_path_buf();
    let config = load_config(&root).expect("lint.toml parses");
    let diags = lint_workspace(&root, &config).expect("workspace scan succeeds");
    let deny: Vec<_> = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .collect();
    assert!(deny.is_empty(), "workspace deny findings: {deny:#?}");
}
