//! NaN-safe total-order helpers for `f64`.
//!
//! The trace-driven comparisons this workspace reproduces are only valid
//! when every float ordering is total: a NaN slipping into a
//! `partial_cmp().unwrap()` turns a quiet model-fitting bug into a panic
//! (or, with `max_by(partial_cmp)`, into a silently wrong winner). Every
//! sort/min/max over raw floats in the workspace routes through these
//! helpers, which delegate to [`f64::total_cmp`]; the `float-compare`
//! rule of `ecas-lint` keeps it that way.
//!
//! # Examples
//!
//! ```
//! use ecas_types::float;
//!
//! let mut xs = vec![2.0, f64::NAN, 1.0];
//! float::total_sort(&mut xs);
//! assert_eq!(xs[0], 1.0);
//! assert_eq!(xs[1], 2.0);
//! assert!(xs[2].is_nan()); // NaN sorts last, deterministically
//!
//! assert_eq!(float::total_max([1.0, 3.0, 2.0]), Some(3.0));
//! assert_eq!(float::total_min([1.0, 3.0, 2.0]), Some(1.0));
//! ```

use std::cmp::Ordering;

/// Sorts a float slice with the IEEE-754 total order (NaN sorts after
/// every number, `-0.0` before `0.0`).
pub fn total_sort(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}

/// Sorts a slice by a float key with the total order.
pub fn total_sort_by_key<T>(xs: &mut [T], mut key: impl FnMut(&T) -> f64) {
    xs.sort_by(|a, b| key(a).total_cmp(&key(b)));
}

/// Maximum of a float iterator under the total order; `None` when empty.
pub fn total_max(xs: impl IntoIterator<Item = f64>) -> Option<f64> {
    xs.into_iter().max_by(|a, b| a.total_cmp(b))
}

/// Minimum of a float iterator under the total order; `None` when empty.
pub fn total_min(xs: impl IntoIterator<Item = f64>) -> Option<f64> {
    xs.into_iter().min_by(|a, b| a.total_cmp(b))
}

/// Element whose float key is largest under the total order.
// ecas-lint: allow(pub-surface, reason = "total-order toolkit is paper-facing API; exercised by unit tests")
pub fn total_max_by_key<T>(
    xs: impl IntoIterator<Item = T>,
    mut key: impl FnMut(&T) -> f64,
) -> Option<T> {
    xs.into_iter().max_by(|a, b| key(a).total_cmp(&key(b)))
}

/// Element whose float key is smallest under the total order.
// ecas-lint: allow(pub-surface, reason = "total-order toolkit is paper-facing API; exercised by unit tests")
pub fn total_min_by_key<T>(
    xs: impl IntoIterator<Item = T>,
    mut key: impl FnMut(&T) -> f64,
) -> Option<T> {
    xs.into_iter().min_by(|a, b| key(a).total_cmp(&key(b)))
}

/// Nearest-rank-from-below index of the `p`-quantile in a sorted sample
/// of `n` elements: `floor(p · (n − 1))`, or `None` when `n == 0`.
///
/// This is the workspace's single percentile convention. Rounding the
/// rank (as `ecas-qoe` once did) can report a value *above* the
/// requested quantile, which turns conservative estimates (p25 link
/// bandwidth, p10 "bad minutes" QoE) into optimistic ones.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use ecas_types::float;
///
/// assert_eq!(float::nearest_rank(4, 0.25), Some(0)); // not 1
/// assert_eq!(float::nearest_rank(5, 0.5), Some(2));
/// assert_eq!(float::nearest_rank(5, 1.0), Some(4));
/// assert_eq!(float::nearest_rank(0, 0.5), None);
/// ```
#[must_use]
pub fn nearest_rank(n: usize, p: f64) -> Option<usize> {
    assert!((0.0..=1.0).contains(&p), "quantile must be in [0, 1], got {p}");
    if n == 0 {
        return None;
    }
    let idx = (p * (n - 1) as f64).floor() as usize;
    Some(idx.min(n - 1))
}

/// An `f64` wrapper that is [`Ord`] via [`f64::total_cmp`], for use in
/// `BinaryHeap`s and B-tree keys (e.g. Dijkstra distances in
/// `ecas-abr`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
// Tests assert exact fixture values; clippy::float_cmp guards library code.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn nan_sorts_last_and_never_panics() {
        let mut xs = vec![f64::NAN, 1.0, -1.0, f64::INFINITY];
        total_sort(&mut xs);
        assert_eq!(xs[0], -1.0);
        assert_eq!(xs[1], 1.0);
        assert_eq!(xs[2], f64::INFINITY);
        assert!(xs[3].is_nan());
    }

    #[test]
    fn max_min_ignore_order_of_appearance() {
        assert_eq!(total_max([2.0, 9.0, 4.0]), Some(9.0));
        assert_eq!(total_min([2.0, 9.0, 4.0]), Some(2.0));
        assert_eq!(total_max(std::iter::empty()), None);
    }

    #[test]
    fn by_key_variants_return_the_element() {
        let words = ["a", "abc", "ab"];
        let longest = total_max_by_key(words, |w| w.len() as f64);
        assert_eq!(longest, Some("abc"));
        let shortest = total_min_by_key(words, |w| w.len() as f64);
        assert_eq!(shortest, Some("a"));
    }

    #[test]
    fn sort_by_key_orders_structs() {
        let mut pairs = vec![(2.0, 'b'), (1.0, 'a'), (3.0, 'c')];
        total_sort_by_key(&mut pairs, |p| p.0);
        assert_eq!(pairs, vec![(1.0, 'a'), (2.0, 'b'), (3.0, 'c')]);
    }

    #[test]
    fn nearest_rank_is_from_below() {
        // Regression: a rounded rank would pick index 1 here and report a
        // value above the requested quantile.
        assert_eq!(nearest_rank(4, 0.25), Some(0));
        assert_eq!(nearest_rank(3, 0.25), Some(0));
        // Extremes and degenerate sizes.
        assert_eq!(nearest_rank(1, 0.0), Some(0));
        assert_eq!(nearest_rank(1, 1.0), Some(0));
        assert_eq!(nearest_rank(10, 1.0), Some(9));
        assert_eq!(nearest_rank(0, 0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn nearest_rank_rejects_out_of_range() {
        let _ = nearest_rank(5, 1.5);
    }

    #[test]
    fn total_f64_orders_in_a_heap() {
        use std::collections::BinaryHeap;
        let mut heap = BinaryHeap::new();
        for v in [1.5, -2.0, f64::NAN, 0.0] {
            heap.push(TotalF64(v));
        }
        let top = heap.pop().map(|t| t.0);
        assert!(top.is_some_and(f64::is_nan)); // NaN is the total-order max
        assert_eq!(heap.pop(), Some(TotalF64(1.5)));
    }
}
