//! Domain types shared across the `ecas` workspace.
//!
//! This crate defines the strongly-typed physical quantities used by the
//! energy- and context-aware streaming stack ([`units`]), the discrete
//! bitrate ladders from the paper ([`ladder`]), and the identifiers used to
//! address segments and tasks ([`ids`]).
//!
//! Everything here is deliberately small and dependency-light so that every
//! other crate in the workspace can build on a common vocabulary.
//!
//! # Examples
//!
//! ```
//! use ecas_types::units::{Mbps, Seconds, MegaBytes};
//! use ecas_types::ladder::BitrateLadder;
//!
//! // The 14-level evaluation ladder from Section V of the paper.
//! let ladder = BitrateLadder::evaluation();
//! assert_eq!(ladder.len(), 14);
//! assert_eq!(ladder.highest().bitrate(), Mbps::new(5.8));
//!
//! // A 2-second segment at 1.5 Mbps is 0.375 MB of data.
//! let level = ladder.index_of(Mbps::new(1.5)).unwrap();
//! let size: MegaBytes = ladder.segment_size(level, Seconds::new(2.0));
//! assert!((size.value() - 0.375).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod float;
pub mod ids;
pub mod ladder;
pub mod units;

pub use error::UnitError;
pub use float::TotalF64;
pub use ids::{SegmentIndex, TaskId};
pub use ladder::{BitrateLadder, LadderEntry, LevelIndex, Resolution};
pub use units::{Dbm, Joules, Mbps, MegaBytes, MetersPerSec2, QoeScore, Seconds, Watts};
