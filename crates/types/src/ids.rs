//! Identifiers for segments and tasks.
//!
//! In the paper a *task* is the unit of work that downloads one video
//! segment (Section III). Tasks and segments are therefore in one-to-one
//! correspondence, but the two identifier types are kept distinct so that an
//! index into the playback timeline cannot be confused with an index into
//! the scheduling timeline.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a video segment within a stream (0-based).
///
/// # Examples
///
/// ```
/// use ecas_types::ids::SegmentIndex;
/// let s = SegmentIndex::new(3);
/// assert_eq!(s.value(), 3);
/// assert_eq!(s.next().value(), 4);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SegmentIndex(usize);

impl SegmentIndex {
    /// Constructs a segment index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// Returns the raw index.
    #[must_use]
    pub fn value(self) -> usize {
        self.0
    }

    /// Returns the index of the following segment.
    #[must_use]
    pub fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// Returns the index of the preceding segment, or `None` for the first.
    #[must_use]
    pub fn prev(self) -> Option<Self> {
        self.0.checked_sub(1).map(Self)
    }
}

impl fmt::Display for SegmentIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "segment#{}", self.0)
    }
}

impl From<usize> for SegmentIndex {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// Identifier of a download task (0-based).
///
/// A task downloads exactly one segment; [`TaskId`] `i` corresponds to
/// [`SegmentIndex`] `i`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct TaskId(usize);

impl TaskId {
    /// Constructs a task identifier.
    #[must_use]
    pub fn new(id: usize) -> Self {
        Self(id)
    }

    /// Returns the raw identifier.
    #[must_use]
    pub fn value(self) -> usize {
        self.0
    }

    /// The segment this task downloads.
    #[must_use]
    pub fn segment(self) -> SegmentIndex {
        SegmentIndex::new(self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

impl From<usize> for TaskId {
    fn from(id: usize) -> Self {
        Self(id)
    }
}

impl From<SegmentIndex> for TaskId {
    fn from(segment: SegmentIndex) -> Self {
        Self(segment.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_prev_next_roundtrip() {
        let s = SegmentIndex::new(5);
        assert_eq!(s.next().prev(), Some(s));
        assert_eq!(SegmentIndex::new(0).prev(), None);
    }

    #[test]
    fn task_maps_to_segment() {
        assert_eq!(TaskId::new(7).segment(), SegmentIndex::new(7));
        assert_eq!(TaskId::from(SegmentIndex::new(2)), TaskId::new(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SegmentIndex::new(1).to_string(), "segment#1");
        assert_eq!(TaskId::new(1).to_string(), "task#1");
    }
}
