//! Error types for unit and ladder construction.

use std::error::Error;
use std::fmt;

/// Error returned when constructing a unit value from an invalid number.
///
/// Unit newtypes such as [`crate::units::Mbps`] reject NaN everywhere and
/// negative values for quantities that are physically non-negative.
///
/// # Examples
///
/// ```
/// use ecas_types::units::Mbps;
///
/// let err = Mbps::try_new(-1.0).unwrap_err();
/// assert!(err.to_string().contains("negative"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum UnitError {
    /// The provided value was NaN.
    NotANumber {
        /// The unit being constructed (e.g. `"Mbps"`).
        unit: &'static str,
    },
    /// The provided value was negative for a non-negative quantity.
    Negative {
        /// The unit being constructed (e.g. `"Joules"`).
        unit: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The provided value fell outside the plausible range of the quantity.
    OutOfRange {
        /// The unit being constructed (e.g. `"Dbm"`).
        unit: &'static str,
        /// The offending value.
        value: f64,
        /// The inclusive lower bound of the plausible range.
        min: f64,
        /// The inclusive upper bound of the plausible range.
        max: f64,
    },
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::NotANumber { unit } => {
                write!(f, "{unit} value was NaN")
            }
            UnitError::Negative { unit, value } => {
                write!(f, "{unit} value {value} was negative")
            }
            UnitError::OutOfRange {
                unit,
                value,
                min,
                max,
            } => {
                write!(
                    f,
                    "{unit} value {value} outside plausible range [{min}, {max}]"
                )
            }
        }
    }
}

impl Error for UnitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            UnitError::NotANumber { unit: "Mbps" },
            UnitError::Negative {
                unit: "Joules",
                value: -3.0,
            },
            UnitError::OutOfRange {
                unit: "Dbm",
                value: 5.0,
                min: -140.0,
                max: -20.0,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UnitError>();
    }
}
