//! Bitrate ladders: the discrete sets of encodings a DASH server offers.
//!
//! The paper uses two ladders:
//!
//! * **Table II** — the six-level ladder used in the quality-assessment
//!   study (144p/0.1 Mbps up to 1080p/5.8 Mbps), see
//!   [`BitrateLadder::table_ii`];
//! * **Section V** — the fourteen-level ladder used in the trace-driven
//!   evaluation, see [`BitrateLadder::evaluation`].
//!
//! A [`BitrateLadder`] is an immutable, strictly-ascending list of
//! [`LadderEntry`] values indexed by [`LevelIndex`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::{Mbps, MegaBytes, Seconds};

/// A named video resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
// ecas-lint: allow(pub-surface, reason = "re-exported field type of LadderEntry")
pub enum Resolution {
    /// 256 x 144.
    R144p,
    /// 426 x 240.
    R240p,
    /// 640 x 360.
    R360p,
    /// 854 x 480.
    R480p,
    /// 1280 x 720.
    R720p,
    /// 1920 x 1080.
    R1080p,
}

impl Resolution {
    /// Vertical pixel count.
    #[must_use]
    pub fn height(self) -> u32 {
        match self {
            Resolution::R144p => 144,
            Resolution::R240p => 240,
            Resolution::R360p => 360,
            Resolution::R480p => 480,
            Resolution::R720p => 720,
            Resolution::R1080p => 1080,
        }
    }

    /// Horizontal pixel count (16:9 aspect, even values per encoder
    /// conventions).
    #[must_use]
    pub fn width(self) -> u32 {
        match self {
            Resolution::R144p => 256,
            Resolution::R240p => 426,
            Resolution::R360p => 640,
            Resolution::R480p => 854,
            Resolution::R720p => 1280,
            Resolution::R1080p => 1920,
        }
    }

    /// All named resolutions, ascending.
    #[must_use]
    pub fn all() -> [Resolution; 6] {
        [
            Resolution::R144p,
            Resolution::R240p,
            Resolution::R360p,
            Resolution::R480p,
            Resolution::R720p,
            Resolution::R1080p,
        ]
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}p", self.height())
    }
}

/// Index of a level within a [`BitrateLadder`] (0 = lowest bitrate).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct LevelIndex(usize);

impl LevelIndex {
    /// Constructs a level index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// Returns the raw index.
    #[must_use]
    pub fn value(self) -> usize {
        self.0
    }
}

impl fmt::Display for LevelIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "level#{}", self.0)
    }
}

impl From<usize> for LevelIndex {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// One rung of a bitrate ladder: a bitrate and, when the bitrate matches a
/// standard YouTube encoding, its named resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LadderEntry {
    bitrate: Mbps,
    resolution: Option<Resolution>,
}

impl LadderEntry {
    /// Constructs an entry with an explicit resolution.
    #[must_use]
    pub fn with_resolution(bitrate: Mbps, resolution: Resolution) -> Self {
        Self {
            bitrate,
            resolution: Some(resolution),
        }
    }

    /// Constructs an entry without a named resolution.
    #[must_use]
    pub fn new(bitrate: Mbps) -> Self {
        Self {
            bitrate,
            resolution: None,
        }
    }

    /// The encoding bitrate.
    #[must_use]
    pub fn bitrate(&self) -> Mbps {
        self.bitrate
    }

    /// The named resolution, when the bitrate corresponds to one of the
    /// Table II encodings.
    #[must_use]
    pub fn resolution(&self) -> Option<Resolution> {
        self.resolution
    }
}

impl fmt::Display for LadderEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resolution {
            Some(r) => write!(f, "{} ({r})", self.bitrate),
            None => write!(f, "{}", self.bitrate),
        }
    }
}

/// Error returned when constructing an invalid [`BitrateLadder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildLadderError {
    /// The ladder had no entries.
    Empty,
    /// Bitrates were not strictly ascending.
    NotAscending {
        /// Index of the first offending entry.
        at: usize,
    },
    /// A bitrate was zero; segments must carry data.
    ZeroBitrate,
}

impl fmt::Display for BuildLadderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildLadderError::Empty => write!(f, "bitrate ladder was empty"),
            BuildLadderError::NotAscending { at } => {
                write!(f, "bitrate ladder not strictly ascending at index {at}")
            }
            BuildLadderError::ZeroBitrate => write!(f, "bitrate ladder contained a zero bitrate"),
        }
    }
}

impl std::error::Error for BuildLadderError {}

/// The bitrate ladder from Table II of the paper (Mbps, with resolutions).
const TABLE_II: [(f64, Resolution); 6] = [
    (0.1, Resolution::R144p),
    (0.375, Resolution::R240p),
    (0.75, Resolution::R360p),
    (1.5, Resolution::R480p),
    (3.0, Resolution::R720p),
    (5.8, Resolution::R1080p),
];

/// The fourteen-level evaluation ladder from Section V of the paper (Mbps).
const EVALUATION: [f64; 14] = [
    0.1, 0.2, 0.24, 0.375, 0.55, 0.75, 1.0, 1.5, 2.3, 2.56, 3.0, 3.6, 4.3, 5.8,
];

/// An immutable, strictly-ascending set of available bitrates.
///
/// # Examples
///
/// ```
/// use ecas_types::ladder::BitrateLadder;
/// use ecas_types::units::Mbps;
///
/// let ladder = BitrateLadder::table_ii();
/// assert_eq!(ladder.len(), 6);
/// let level = ladder.highest_at_most(Mbps::new(2.0)).unwrap();
/// assert_eq!(ladder.bitrate(level), Mbps::new(1.5));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawBitrateLadder")]
pub struct BitrateLadder {
    entries: Vec<LadderEntry>,
}

/// Wire shape of [`BitrateLadder`]. Deserialization routes through
/// [`BitrateLadder::from_entries`], so a ladder that arrives over serde
/// (config files, cache entries) upholds the same non-empty /
/// strictly-ascending invariants as a constructed one — downstream code
/// (e.g. the player's `playing_bitrate`) relies on ladders never being
/// empty.
#[derive(Deserialize)]
struct RawBitrateLadder {
    entries: Vec<LadderEntry>,
}

impl TryFrom<RawBitrateLadder> for BitrateLadder {
    type Error = BuildLadderError;

    fn try_from(raw: RawBitrateLadder) -> Result<Self, Self::Error> {
        Self::from_entries(raw.entries)
    }
}

impl BitrateLadder {
    /// Builds a ladder from entries, validating strict ascent.
    ///
    /// # Errors
    ///
    /// Returns [`BuildLadderError`] if `entries` is empty, contains a zero
    /// bitrate, or is not strictly ascending.
    pub fn from_entries(entries: Vec<LadderEntry>) -> Result<Self, BuildLadderError> {
        if entries.is_empty() {
            return Err(BuildLadderError::Empty);
        }
        for (i, e) in entries.iter().enumerate() {
            if e.bitrate.is_zero() {
                return Err(BuildLadderError::ZeroBitrate);
            }
            if i > 0 && entries[i - 1].bitrate >= e.bitrate {
                return Err(BuildLadderError::NotAscending { at: i });
            }
        }
        Ok(Self { entries })
    }

    /// Builds a ladder from bare bitrates, attaching named resolutions where
    /// the bitrate exactly matches a Table II encoding.
    ///
    /// # Errors
    ///
    /// Returns [`BuildLadderError`] under the same conditions as
    /// [`Self::from_entries`].
    pub fn from_bitrates(bitrates: Vec<Mbps>) -> Result<Self, BuildLadderError> {
        let entries = bitrates
            .into_iter()
            .map(|b| {
                let named = TABLE_II
                    .iter()
                    .find(|(mbps, _)| (b.value() - mbps).abs() < 1e-12)
                    .map(|&(_, r)| r);
                match named {
                    Some(r) => LadderEntry::with_resolution(b, r),
                    None => LadderEntry::new(b),
                }
            })
            .collect();
        Self::from_entries(entries)
    }

    /// The six-level ladder of Table II (144p/0.1 Mbps … 1080p/5.8 Mbps).
    #[must_use]
    pub fn table_ii() -> Self {
        let entries = TABLE_II
            .iter()
            .map(|&(mbps, r)| LadderEntry::with_resolution(Mbps::new(mbps), r))
            .collect();
        // ecas-lint: allow(panic-safety, reason = "the static Table II data is well-formed; exercised by unit tests")
        Self::from_entries(entries).expect("static Table II ladder is valid")
    }

    /// The fourteen-level evaluation ladder of Section V.
    #[must_use]
    pub fn evaluation() -> Self {
        Self::from_bitrates(EVALUATION.iter().map(|&m| Mbps::new(m)).collect())
            // ecas-lint: allow(panic-safety, reason = "the static evaluation ladder is well-formed; exercised by unit tests")
            .expect("static evaluation ladder is valid")
    }

    /// Number of levels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ladder has no levels (never true for a constructed
    /// ladder, provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the entry at `level`, or `None` if out of range.
    #[must_use]
    pub fn get(&self, level: LevelIndex) -> Option<&LadderEntry> {
        self.entries.get(level.value())
    }

    /// Returns the bitrate at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn bitrate(&self, level: LevelIndex) -> Mbps {
        self.entries[level.value()].bitrate()
    }

    /// Iterates over the entries, lowest bitrate first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &LadderEntry> + ExactSizeIterator {
        self.entries.iter()
    }

    /// Iterates over all level indices, lowest first.
    pub fn levels(&self) -> impl DoubleEndedIterator<Item = LevelIndex> + ExactSizeIterator {
        (0..self.entries.len()).map(LevelIndex::new)
    }

    /// The lowest-bitrate entry.
    #[must_use]
    pub fn lowest(&self) -> &LadderEntry {
        // ecas-lint: allow(panic-safety, reason = "ladder constructors reject empty ladders")
        self.entries.first().expect("ladder is never empty")
    }

    /// The highest-bitrate entry.
    #[must_use]
    pub fn highest(&self) -> &LadderEntry {
        // ecas-lint: allow(panic-safety, reason = "ladder constructors reject empty ladders")
        self.entries.last().expect("ladder is never empty")
    }

    /// The index of the highest level.
    #[must_use]
    pub fn highest_level(&self) -> LevelIndex {
        LevelIndex::new(self.entries.len() - 1)
    }

    /// The index of the lowest level.
    #[must_use]
    pub fn lowest_level(&self) -> LevelIndex {
        LevelIndex::new(0)
    }

    /// Finds the level whose bitrate equals `bitrate` (within 1e-12 Mbps).
    #[must_use]
    pub fn index_of(&self, bitrate: Mbps) -> Option<LevelIndex> {
        self.entries
            .iter()
            .position(|e| (e.bitrate().value() - bitrate.value()).abs() < 1e-12)
            .map(LevelIndex::new)
    }

    /// The highest level whose bitrate does not exceed `budget`, or `None`
    /// if even the lowest level exceeds it.
    #[must_use]
    pub fn highest_at_most(&self, budget: Mbps) -> Option<LevelIndex> {
        self.entries
            .iter()
            .rposition(|e| e.bitrate() <= budget)
            .map(LevelIndex::new)
    }

    /// The highest level whose bitrate does not exceed `budget`, falling
    /// back to the lowest level when nothing fits.
    #[must_use]
    pub fn highest_at_most_or_lowest(&self, budget: Mbps) -> LevelIndex {
        self.highest_at_most(budget)
            .unwrap_or_else(|| self.lowest_level())
    }

    /// The level with bitrate closest to `target` (ties resolve downward).
    #[must_use]
    pub fn nearest(&self, target: Mbps) -> LevelIndex {
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, e) in self.entries.iter().enumerate() {
            let d = (e.bitrate().value() - target.value()).abs();
            if d < best_dist {
                best = i;
                best_dist = d;
            }
        }
        LevelIndex::new(best)
    }

    /// One level up from `level`, clamped to the top of the ladder.
    #[must_use]
    pub fn up(&self, level: LevelIndex) -> LevelIndex {
        LevelIndex::new((level.value() + 1).min(self.entries.len() - 1))
    }

    /// One level down from `level`, clamped to the bottom of the ladder.
    #[must_use]
    pub fn down(&self, level: LevelIndex) -> LevelIndex {
        LevelIndex::new(level.value().saturating_sub(1))
    }

    /// Size of one segment of `duration` encoded at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn segment_size(&self, level: LevelIndex, duration: Seconds) -> MegaBytes {
        self.bitrate(level).data_over(duration)
    }
}

impl fmt::Display for BitrateLadder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ladder[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_matches_paper() {
        let l = BitrateLadder::table_ii();
        assert_eq!(l.len(), 6);
        assert_eq!(l.lowest().bitrate(), Mbps::new(0.1));
        assert_eq!(l.lowest().resolution(), Some(Resolution::R144p));
        assert_eq!(l.highest().bitrate(), Mbps::new(5.8));
        assert_eq!(l.highest().resolution(), Some(Resolution::R1080p));
    }

    #[test]
    fn evaluation_ladder_has_fourteen_levels_and_named_subset() {
        let l = BitrateLadder::evaluation();
        assert_eq!(l.len(), 14);
        // The Table II bitrates keep their resolutions.
        let i480 = l.index_of(Mbps::new(1.5)).unwrap();
        assert_eq!(l.get(i480).unwrap().resolution(), Some(Resolution::R480p));
        // Intermediate bitrates have no named resolution.
        let i = l.index_of(Mbps::new(2.3)).unwrap();
        assert_eq!(l.get(i).unwrap().resolution(), None);
    }

    #[test]
    fn rejects_invalid_ladders() {
        assert_eq!(
            BitrateLadder::from_bitrates(vec![]),
            Err(BuildLadderError::Empty)
        );
        assert_eq!(
            BitrateLadder::from_bitrates(vec![Mbps::new(1.0), Mbps::new(1.0)]),
            Err(BuildLadderError::NotAscending { at: 1 })
        );
        assert_eq!(
            BitrateLadder::from_bitrates(vec![Mbps::new(2.0), Mbps::new(1.0)]),
            Err(BuildLadderError::NotAscending { at: 1 })
        );
        assert_eq!(
            BitrateLadder::from_bitrates(vec![Mbps::zero()]),
            Err(BuildLadderError::ZeroBitrate)
        );
    }

    #[test]
    fn highest_at_most_selection() {
        let l = BitrateLadder::table_ii();
        assert_eq!(
            l.bitrate(l.highest_at_most(Mbps::new(2.0)).unwrap()),
            Mbps::new(1.5)
        );
        assert_eq!(
            l.bitrate(l.highest_at_most(Mbps::new(100.0)).unwrap()),
            Mbps::new(5.8)
        );
        assert_eq!(l.highest_at_most(Mbps::new(0.05)), None);
        assert_eq!(
            l.bitrate(l.highest_at_most_or_lowest(Mbps::new(0.05))),
            Mbps::new(0.1)
        );
    }

    #[test]
    fn up_down_clamp_at_boundaries() {
        let l = BitrateLadder::table_ii();
        assert_eq!(l.down(l.lowest_level()), l.lowest_level());
        assert_eq!(l.up(l.highest_level()), l.highest_level());
        assert_eq!(l.up(LevelIndex::new(0)), LevelIndex::new(1));
        assert_eq!(l.down(LevelIndex::new(3)), LevelIndex::new(2));
    }

    #[test]
    fn nearest_picks_closest() {
        let l = BitrateLadder::table_ii();
        assert_eq!(l.bitrate(l.nearest(Mbps::new(1.4))), Mbps::new(1.5));
        assert_eq!(l.bitrate(l.nearest(Mbps::new(0.0))), Mbps::new(0.1));
        assert_eq!(l.bitrate(l.nearest(Mbps::new(50.0))), Mbps::new(5.8));
    }

    #[test]
    fn segment_size_matches_rate_times_time() {
        let l = BitrateLadder::evaluation();
        let lvl = l.index_of(Mbps::new(5.8)).unwrap();
        let sz = l.segment_size(lvl, Seconds::new(2.0));
        assert!((sz.value() - 1.45).abs() < 1e-12);
    }

    #[test]
    fn resolutions_are_ordered_and_displayed() {
        let all = Resolution::all();
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].height() < w[1].height());
            assert!(w[0].width() < w[1].width());
        }
        assert_eq!(Resolution::R1080p.to_string(), "1080p");
    }

    /// Regression: `#[derive(Deserialize)]` used to bypass
    /// `from_entries`, so an empty or descending ladder could enter the
    /// system through serde and later surface as a bogus 0.0-bps
    /// playing bitrate. Deserialization now routes through the
    /// validating constructor.
    #[test]
    fn deserialization_validates_invariants() {
        let empty = r#"{"entries":[]}"#;
        assert!(serde_json::from_str::<BitrateLadder>(empty).is_err());
        let descending = r#"{"entries":[
            {"bitrate":2.0,"resolution":null},
            {"bitrate":1.0,"resolution":null}
        ]}"#;
        assert!(serde_json::from_str::<BitrateLadder>(descending).is_err());
        let good = serde_json::to_string(&BitrateLadder::table_ii()).unwrap();
        let back: BitrateLadder = serde_json::from_str(&good).unwrap();
        assert_eq!(back, BitrateLadder::table_ii());
    }

    #[test]
    fn levels_iterator_covers_all() {
        let l = BitrateLadder::table_ii();
        let levels: Vec<_> = l.levels().collect();
        assert_eq!(levels.len(), 6);
        assert_eq!(levels[0], l.lowest_level());
        assert_eq!(*levels.last().unwrap(), l.highest_level());
    }
}
