//! Strongly-typed physical quantities.
//!
//! Every quantity that crosses a crate boundary in this workspace is wrapped
//! in a newtype so that a bitrate can never be confused with a throughput
//! sample in the wrong unit, a power with an energy, and so on
//! (Rust API guideline C-NEWTYPE).
//!
//! All newtypes wrap `f64`, reject NaN at construction, and additionally
//! validate the physically-plausible domain of the quantity:
//!
//! * [`Mbps`], [`Joules`], [`Watts`], [`Seconds`], [`MegaBytes`] and
//!   [`MetersPerSec2`] must be non-negative;
//! * [`Dbm`] must lie in `[-140, -10]` (the plausible range of cellular
//!   received signal strength);
//! * [`QoeScore`] must lie in `[0, 5]` (the five-level MOS scale after the
//!   ITU-T P.910 transform used in Section II of the paper).
//!
//! Dimensionally-meaningful arithmetic is provided: `Watts * Seconds ->
//! Joules`, `Mbps * Seconds -> MegaBytes`, `MegaBytes / Seconds -> Mbps`,
//! `MegaBytes / Mbps -> Seconds` and so on.
//!
//! # Examples
//!
//! ```
//! use ecas_types::units::{Mbps, MegaBytes, Seconds, Watts};
//!
//! let throughput = Mbps::new(8.0);
//! let duration = Seconds::new(2.0);
//! let data: MegaBytes = throughput * duration; // 2 MB
//! assert_eq!(data, MegaBytes::new(2.0));
//!
//! let energy = Watts::new(2.5) * Seconds::new(4.0);
//! assert_eq!(energy.value(), 10.0);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::error::UnitError;

/// Validation domain for a unit newtype.
enum Domain {
    NonNegative,
    Range(f64, f64),
}

fn validate(unit: &'static str, value: f64, domain: Domain) -> Result<f64, UnitError> {
    if value.is_nan() {
        return Err(UnitError::NotANumber { unit });
    }
    match domain {
        Domain::NonNegative => {
            if value < 0.0 {
                Err(UnitError::Negative { unit, value })
            } else {
                Ok(value)
            }
        }
        Domain::Range(min, max) => {
            if value < min || value > max {
                Err(UnitError::OutOfRange {
                    unit,
                    value,
                    min,
                    max,
                })
            } else {
                Ok(value)
            }
        }
    }
}

macro_rules! float_unit {
    (
        $(#[$meta:meta])*
        $name:ident, $unit_str:expr, $suffix:expr, $domain:expr
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Constructs a new value.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN or outside the valid domain of the
            /// quantity. Use [`Self::try_new`] for fallible construction.
            #[must_use]
            pub fn new(value: f64) -> Self {
                match Self::try_new(value) {
                    Ok(v) => v,
                    // ecas-lint: allow(panic-safety, reason = "new() is the documented panicking constructor; try_new is the fallible path")
                    Err(e) => panic!("invalid {}: {e}", $unit_str),
                }
            }

            /// Constructs a new value, validating the domain.
            ///
            /// # Errors
            ///
            /// Returns [`UnitError`] if `value` is NaN or outside the valid
            /// domain of the quantity.
            pub fn try_new(value: f64) -> Result<Self, UnitError> {
                validate($unit_str, value, $domain).map(Self)
            }

            /// Returns the raw `f64` value.
            #[must_use]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the smaller of two values.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                if self.0 <= other.0 {
                    self
                } else {
                    other
                }
            }

            /// Returns the larger of two values.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                if self.0 >= other.0 {
                    self
                } else {
                    other
                }
            }

            /// Returns a zero value of this unit.
            #[must_use]
            pub fn zero() -> Self {
                Self(0.0)
            }

            /// Returns `true` if the value is exactly zero.
            #[must_use]
            pub fn is_zero(self) -> bool {
                // ecas-lint: allow(float-compare, reason = "is_zero intentionally tests exact bit-level zero")
                self.0 == 0.0
            }

            /// Total ordering using `f64::total_cmp`.
            ///
            /// Values constructed through [`Self::new`] are never NaN, so
            /// this is a proper total order on valid values.
            #[must_use]
            pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4} {}", self.0, $suffix)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name::new(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name::new(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            /// Dimensionless ratio of two values of the same unit.
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }
    };
}

/// Implements additive arithmetic (`Add`, `Sub`, `Sum`, assign variants) for
/// a unit where the sum and difference stay in the same unit.
macro_rules! additive_unit {
    ($name:ident) => {
        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name::new(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                *self = *self + rhs;
            }
        }

        impl Sub for $name {
            type Output = $name;
            /// Subtracts two values.
            ///
            /// # Panics
            ///
            /// Panics if the result would be outside the unit's domain (for
            /// non-negative quantities, if `rhs > self`). Use
            /// `saturating_sub` when clamping at zero is intended.
            fn sub(self, rhs: $name) -> $name {
                $name::new(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                *self = *self - rhs;
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::zero(), |acc, x| acc + x)
            }
        }

        impl $name {
            /// Subtracts `rhs`, clamping the result at zero instead of
            /// panicking.
            #[must_use]
            pub fn saturating_sub(self, rhs: $name) -> $name {
                $name::new((self.0 - rhs.0).max(0.0))
            }
        }
    };
}

float_unit!(
    /// A bitrate or throughput in megabits per second.
    ///
    /// Used both for the encoding bitrate of a video segment (Table II of
    /// the paper) and for measured network throughput.
    Mbps,
    "Mbps",
    "Mbps",
    Domain::NonNegative
);
additive_unit!(Mbps);

float_unit!(
    /// Received signal strength in dBm.
    ///
    /// LTE RSRP-style readings are negative; this type accepts the plausible
    /// range `[-140, -10]` dBm. Stronger (closer to zero) compares greater.
    Dbm,
    "Dbm",
    "dBm",
    Domain::Range(-140.0, -10.0)
);

float_unit!(
    /// An amount of energy in joules.
    Joules,
    "Joules",
    "J",
    Domain::NonNegative
);
additive_unit!(Joules);

float_unit!(
    /// Instantaneous power in watts.
    Watts,
    "Watts",
    "W",
    Domain::NonNegative
);
additive_unit!(Watts);

float_unit!(
    /// A duration or timestamp in seconds.
    Seconds,
    "Seconds",
    "s",
    Domain::NonNegative
);
additive_unit!(Seconds);

float_unit!(
    /// A data size in megabytes (10^6 bytes).
    MegaBytes,
    "MegaBytes",
    "MB",
    Domain::NonNegative
);
additive_unit!(MegaBytes);

float_unit!(
    /// A vibration level in metres per second squared.
    ///
    /// This is the RMS statistic of Eq. (5) of the paper, not a raw
    /// (signed) accelerometer axis sample, hence non-negative.
    MetersPerSec2,
    "MetersPerSec2",
    "m/s^2",
    Domain::NonNegative
);
additive_unit!(MetersPerSec2);

float_unit!(
    /// A Quality-of-Experience score on the five-level MOS scale.
    ///
    /// The paper collects ratings on the nine-grade ITU-T P.910 numerical
    /// scale and transforms them to `[1, 5]` via `1 + 4 * (x - 1) / 8`;
    /// impairment arithmetic may produce intermediate values down to zero.
    QoeScore,
    "QoeScore",
    "MOS",
    Domain::Range(0.0, 5.0)
);

impl QoeScore {
    /// Applies the paper's nine-grade to five-level transform
    /// `q5 = 1 + 4 * (q9 - 1) / 8`.
    ///
    /// # Panics
    ///
    /// Panics if `nine_grade` is outside `[1, 9]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecas_types::units::QoeScore;
    /// assert_eq!(QoeScore::from_nine_grade(9.0).value(), 5.0);
    /// assert_eq!(QoeScore::from_nine_grade(1.0).value(), 1.0);
    /// assert_eq!(QoeScore::from_nine_grade(5.0).value(), 3.0);
    /// ```
    #[must_use]
    pub fn from_nine_grade(nine_grade: f64) -> Self {
        assert!(
            (1.0..=9.0).contains(&nine_grade),
            "nine-grade rating {nine_grade} outside [1, 9]"
        );
        Self::new(1.0 + 4.0 * (nine_grade - 1.0) / 8.0)
    }

    /// Subtracts an impairment from this score, clamping at zero.
    #[must_use]
    pub fn impaired_by(self, impairment: f64) -> Self {
        Self::new((self.0 - impairment).clamp(0.0, 5.0))
    }
}

impl Dbm {
    /// Returns how many dB weaker this signal is than `reference`
    /// (positive when `self` is weaker).
    ///
    /// # Examples
    ///
    /// ```
    /// use ecas_types::units::Dbm;
    /// let weak = Dbm::new(-115.0);
    /// assert_eq!(weak.weaker_than(Dbm::new(-90.0)), 25.0);
    /// ```
    #[must_use]
    pub fn weaker_than(self, reference: Dbm) -> f64 {
        reference.0 - self.0
    }
}

impl Mbps {
    /// Converts a bitrate to the equivalent data rate in megabytes per
    /// second (divides by 8).
    #[must_use]
    pub fn megabytes_per_second(self) -> f64 {
        self.0 / 8.0
    }

    /// Returns the amount of data transferred at this rate over `duration`.
    #[must_use]
    pub fn data_over(self, duration: Seconds) -> MegaBytes {
        MegaBytes::new(self.megabytes_per_second() * duration.value())
    }
}

impl MegaBytes {
    /// Returns the time needed to transfer this much data at `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    #[must_use]
    pub fn transfer_time(self, rate: Mbps) -> Seconds {
        assert!(!rate.is_zero(), "cannot transfer data at zero throughput");
        Seconds::new(self.0 / rate.megabytes_per_second())
    }

    /// Returns this size in megabits.
    #[must_use]
    pub fn megabits(self) -> f64 {
        self.0 * 8.0
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Average power over a duration.
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.value() / rhs.value())
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// How long this much energy lasts at a constant power draw.
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

impl Mul<Seconds> for Mbps {
    type Output = MegaBytes;
    fn mul(self, rhs: Seconds) -> MegaBytes {
        self.data_over(rhs)
    }
}

impl Mul<Mbps> for Seconds {
    type Output = MegaBytes;
    fn mul(self, rhs: Mbps) -> MegaBytes {
        rhs.data_over(self)
    }
}

impl Div<Seconds> for MegaBytes {
    type Output = Mbps;
    /// Average throughput achieved transferring this much data over a
    /// duration.
    fn div(self, rhs: Seconds) -> Mbps {
        Mbps::new(self.megabits() / rhs.value())
    }
}

impl Div<Mbps> for MegaBytes {
    type Output = Seconds;
    /// Transfer time of this much data at a given rate.
    fn div(self, rhs: Mbps) -> Seconds {
        self.transfer_time(rhs)
    }
}

#[cfg(test)]
// Tests assert exact fixture values; clippy::float_cmp guards library code.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_nan() {
        assert!(Mbps::try_new(f64::NAN).is_err());
        assert!(Dbm::try_new(f64::NAN).is_err());
        assert!(QoeScore::try_new(f64::NAN).is_err());
    }

    #[test]
    fn construction_rejects_negative_for_nonnegative_units() {
        assert!(Mbps::try_new(-0.1).is_err());
        assert!(Joules::try_new(-1.0).is_err());
        assert!(Watts::try_new(-1.0).is_err());
        assert!(Seconds::try_new(-1.0).is_err());
        assert!(MegaBytes::try_new(-1.0).is_err());
        assert!(MetersPerSec2::try_new(-1.0).is_err());
    }

    #[test]
    fn dbm_range_is_enforced() {
        assert!(Dbm::try_new(-90.0).is_ok());
        assert!(Dbm::try_new(5.0).is_err());
        assert!(Dbm::try_new(-200.0).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid Mbps")]
    fn new_panics_on_invalid() {
        let _ = Mbps::new(-1.0);
    }

    #[test]
    fn qoe_nine_grade_transform_matches_paper() {
        assert_eq!(QoeScore::from_nine_grade(9.0).value(), 5.0);
        assert_eq!(QoeScore::from_nine_grade(1.0).value(), 1.0);
        assert!((QoeScore::from_nine_grade(7.0).value() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn qoe_impairment_clamps_at_zero() {
        let q = QoeScore::new(1.2);
        assert_eq!(q.impaired_by(2.0).value(), 0.0);
        assert_eq!(q.impaired_by(0.2).value(), 1.0);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(2.0) * Seconds::new(3.0);
        assert_eq!(e, Joules::new(6.0));
        assert_eq!(e / Seconds::new(3.0), Watts::new(2.0));
        assert_eq!(e / Watts::new(2.0), Seconds::new(3.0));
    }

    #[test]
    fn bitrate_data_time_relations_are_consistent() {
        let rate = Mbps::new(4.0);
        let t = Seconds::new(10.0);
        let data = rate * t;
        assert_eq!(data, MegaBytes::new(5.0));
        assert_eq!(data / t, rate);
        assert_eq!(data / rate, t);
    }

    #[test]
    #[should_panic(expected = "zero throughput")]
    fn transfer_time_at_zero_rate_panics() {
        let _ = MegaBytes::new(1.0).transfer_time(Mbps::zero());
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            Seconds::new(1.0).saturating_sub(Seconds::new(5.0)),
            Seconds::zero()
        );
        assert_eq!(
            Seconds::new(5.0).saturating_sub(Seconds::new(1.0)),
            Seconds::new(4.0)
        );
    }

    #[test]
    fn sum_accumulates() {
        let total: Joules = [1.0, 2.0, 3.5].iter().map(|&j| Joules::new(j)).sum();
        assert_eq!(total, Joules::new(6.5));
    }

    #[test]
    fn dbm_weaker_than_sign_convention() {
        assert!(Dbm::new(-115.0).weaker_than(Dbm::new(-90.0)) > 0.0);
        assert!(Dbm::new(-80.0).weaker_than(Dbm::new(-90.0)) < 0.0);
    }

    #[test]
    fn display_includes_suffix() {
        assert!(Mbps::new(1.5).to_string().contains("Mbps"));
        assert!(Dbm::new(-90.0).to_string().contains("dBm"));
        assert!(Joules::new(1.0).to_string().contains('J'));
    }

    #[test]
    fn serde_is_transparent() {
        let j = serde_json::to_string(&Mbps::new(1.5)).unwrap();
        assert_eq!(j, "1.5");
        let back: Mbps = serde_json::from_str(&j).unwrap();
        assert_eq!(back, Mbps::new(1.5));
    }

    #[test]
    fn min_max_and_total_cmp() {
        let a = Mbps::new(1.0);
        let b = Mbps::new(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.total_cmp(&b), std::cmp::Ordering::Less);
    }
}
