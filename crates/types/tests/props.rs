//! Property-based tests for unit arithmetic and ladder invariants.

use ecas_types::ladder::{BitrateLadder, LevelIndex};
use ecas_types::units::{Mbps, MegaBytes, QoeScore, Seconds, Watts};
use proptest::prelude::*;

fn pos_f64() -> impl Strategy<Value = f64> {
    // Positive, finite, comfortably away from denormals and overflow.
    (1e-6f64..1e9f64).prop_map(|x| x)
}

proptest! {
    #[test]
    fn energy_identities(p in pos_f64(), t in pos_f64()) {
        let e = Watts::new(p) * Seconds::new(t);
        let p_back = e / Seconds::new(t);
        prop_assert!((p_back.value() - p).abs() / p < 1e-9);
        let t_back = e / Watts::new(p);
        prop_assert!((t_back.value() - t).abs() / t < 1e-9);
    }

    #[test]
    fn data_rate_time_identities(r in pos_f64(), t in pos_f64()) {
        let data = Mbps::new(r) * Seconds::new(t);
        let r_back = data / Seconds::new(t);
        prop_assert!((r_back.value() - r).abs() / r < 1e-9);
        let t_back = data / Mbps::new(r);
        prop_assert!((t_back.value() - t).abs() / t < 1e-9);
    }

    #[test]
    fn transfer_time_monotone_in_rate(d in pos_f64(), r1 in pos_f64(), r2 in pos_f64()) {
        prop_assume!(r1 < r2);
        let data = MegaBytes::new(d);
        prop_assert!(data.transfer_time(Mbps::new(r2)) <= data.transfer_time(Mbps::new(r1)));
    }

    #[test]
    fn saturating_sub_never_negative(a in pos_f64(), b in pos_f64()) {
        let s = Seconds::new(a).saturating_sub(Seconds::new(b));
        prop_assert!(s.value() >= 0.0);
    }

    #[test]
    fn nine_grade_transform_is_affine_monotone(x in 1.0f64..9.0, y in 1.0f64..9.0) {
        prop_assume!(x < y);
        prop_assert!(QoeScore::from_nine_grade(x) < QoeScore::from_nine_grade(y));
        // Endpoints of the transform stay in the 5-level scale.
        let q = QoeScore::from_nine_grade(x).value();
        prop_assert!((1.0..=5.0).contains(&q));
    }

    #[test]
    fn ladder_from_sorted_bitrates_roundtrips(raw in proptest::collection::btree_set(10u64..100_000u64, 1..20)) {
        let bitrates: Vec<Mbps> = raw.iter().map(|&b| Mbps::new(b as f64 / 1000.0)).collect();
        let ladder = BitrateLadder::from_bitrates(bitrates.clone()).unwrap();
        prop_assert_eq!(ladder.len(), bitrates.len());
        for (i, b) in bitrates.iter().enumerate() {
            prop_assert_eq!(ladder.bitrate(LevelIndex::new(i)), *b);
            prop_assert_eq!(ladder.index_of(*b), Some(LevelIndex::new(i)));
        }
    }

    #[test]
    fn highest_at_most_is_correct_choice(raw in proptest::collection::btree_set(10u64..100_000u64, 1..20), budget in 0.005f64..120.0) {
        let bitrates: Vec<Mbps> = raw.iter().map(|&b| Mbps::new(b as f64 / 1000.0)).collect();
        let ladder = BitrateLadder::from_bitrates(bitrates).unwrap();
        match ladder.highest_at_most(Mbps::new(budget)) {
            Some(level) => {
                // Chosen level fits the budget…
                prop_assert!(ladder.bitrate(level) <= Mbps::new(budget));
                // …and the next level up (if any) does not.
                if level != ladder.highest_level() {
                    prop_assert!(ladder.bitrate(ladder.up(level)) > Mbps::new(budget));
                }
            }
            None => {
                prop_assert!(ladder.lowest().bitrate() > Mbps::new(budget));
            }
        }
    }

    #[test]
    fn nearest_minimizes_distance(raw in proptest::collection::btree_set(10u64..100_000u64, 1..20), target in 0.0f64..120.0) {
        let bitrates: Vec<Mbps> = raw.iter().map(|&b| Mbps::new(b as f64 / 1000.0)).collect();
        let ladder = BitrateLadder::from_bitrates(bitrates).unwrap();
        let chosen = ladder.nearest(Mbps::new(target));
        let chosen_d = (ladder.bitrate(chosen).value() - target).abs();
        for lvl in ladder.levels() {
            let d = (ladder.bitrate(lvl).value() - target).abs();
            prop_assert!(chosen_d <= d + 1e-12);
        }
    }

    #[test]
    fn up_down_stay_in_bounds(raw in proptest::collection::btree_set(10u64..100_000u64, 1..20), idx in 0usize..40) {
        let bitrates: Vec<Mbps> = raw.iter().map(|&b| Mbps::new(b as f64 / 1000.0)).collect();
        let ladder = BitrateLadder::from_bitrates(bitrates).unwrap();
        let idx = LevelIndex::new(idx.min(ladder.len() - 1));
        prop_assert!(ladder.up(idx).value() < ladder.len());
        prop_assert!(ladder.down(idx).value() < ladder.len());
        prop_assert!(ladder.up(idx).value() >= idx.value());
        prop_assert!(ladder.down(idx).value() <= idx.value());
    }
}
