//! Observed scenario runs: run manifests, JSONL event streams, metrics
//! summaries and per-segment timelines written next to the results.
//!
//! [`run_observed`] replays a [`Scenario`] like [`Scenario::run`] but
//! leaves a reproducibility trail in the output directory:
//!
//! ```text
//! out/
//!   manifest.json            # RunManifest: seeds, ladder, config hash
//!   metrics.txt              # counters, gauges, spans, histograms
//!   events/<trace>__<approach>.jsonl   # deterministic event streams
//!   timelines/<trace>__<approach>.txt  # per-segment timeline tables
//! ```
//!
//! Event files depend only on seeds and configuration, so a rerun of the
//! same scenario produces byte-identical JSONL and an equal manifest hash
//! — asserted by this crate's determinism tests.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

use ecas_obs::render::{metrics_summary, segment_timeline};
use ecas_obs::{stable_hash, MetricsRegistry, RunManifest, TraceRef};
use ecas_trace::videos::EvalTraceSpec;
use ecas_types::ladder::LevelIndex;

use crate::metrics::{ComparisonSummary, TraceComparison};
use crate::report::{Scenario, TraceSelection};
use crate::runner::ExperimentRunner;
use crate::sweep::{CacheStats, ExecPolicy, SweepEngine};

/// Builds the [`RunManifest`] describing a scenario run under `runner`.
#[must_use]
pub fn manifest(scenario: &Scenario, runner: &ExperimentRunner) -> RunManifest {
    let ladder = runner.simulator().ladder();
    RunManifest {
        scenario: scenario.name.clone(),
        crate_version: env!("CARGO_PKG_VERSION").to_string(),
        eta: runner.eta(),
        ladder_mbps: (0..ladder.len())
            .map(|i| ladder.bitrate(LevelIndex::new(i)).value())
            .collect(),
        config_hash: format!("{:016x}", stable_hash(runner.simulator().config())),
        traces: trace_refs(&scenario.traces),
        approaches: scenario
            .approaches
            .iter()
            .map(|a| a.label().to_string())
            .collect(),
    }
}

/// The `(name, seed)` pairs a selection generates, without materializing
/// the traces.
fn trace_refs(selection: &TraceSelection) -> Vec<TraceRef> {
    let spec_ref = |s: &EvalTraceSpec| TraceRef {
        name: format!("trace{}", s.id),
        seed: s.seed,
    };
    match selection {
        TraceSelection::TableV => EvalTraceSpec::table_v().iter().map(spec_ref).collect(),
        TraceSelection::TableVSubset(ids) => {
            let specs = EvalTraceSpec::table_v();
            ids.iter()
                .map(|id| {
                    spec_ref(
                        specs
                            .iter()
                            .find(|s| s.id == *id)
                            // ecas-lint: allow(panic-safety, reason = "an unknown trace id is a caller bug in a fixed experiment spec; abort loudly")
                            .unwrap_or_else(|| panic!("no Table V trace with id {id}")),
                    )
                })
                .collect()
        }
        TraceSelection::Synthetic {
            context,
            count,
            base_seed,
            ..
        } => (0..*count)
            .map(|i| TraceRef {
                name: format!("{context}-{i}"),
                seed: base_seed + u64::from(i),
            })
            .collect(),
    }
}

/// `<trace>__<approach>` file stem for per-pair artifacts.
fn pair_stem(trace: &str, approach_label: &str) -> String {
    format!("{trace}__{}", approach_label.to_lowercase())
}

/// Runs a scenario with full instrumentation, writing the manifest, one
/// JSONL event file and one timeline table per `(trace, approach)` pair,
/// and an aggregate metrics summary into `dir`.
///
/// Returns the same [`ComparisonSummary`] as [`Scenario::run`] — built
/// from the instrumented runs themselves, so nothing executes twice.
///
/// # Errors
///
/// Returns the I/O error if any artifact cannot be written.
///
/// # Panics
///
/// Panics on the same invalid inputs as [`Scenario::run`].
pub fn run_observed(scenario: &Scenario, dir: &Path) -> io::Result<ComparisonSummary> {
    run_observed_with(scenario, dir, &scenario.policy()).map(|(summary, _)| summary)
}

/// [`run_observed`] under an explicit [`ExecPolicy`]: when the policy
/// caches, every `(trace, approach)` pair — including its event JSONL —
/// and every base-energy run is served from the cache on a warm rerun,
/// producing byte-identical event files without executing the simulator.
///
/// Only the policy's cache layer affects the observed pairs (each pair
/// streams into its own recorder, which is inherently sequential); the
/// wrapped policy still drives base-energy computation.
///
/// Returns the summary together with the run's [`CacheStats`]. On a warm
/// run the `sim/*` metrics stay at zero — the `sweep/cache_*` counters in
/// `metrics.txt` tell the story instead (see [`ecas_obs::names`]).
///
/// # Errors
///
/// Returns the I/O error if any artifact cannot be written.
///
/// # Panics
///
/// Panics on the same invalid inputs as [`Scenario::run`].
pub fn run_observed_with(
    scenario: &Scenario,
    dir: &Path,
    policy: &ExecPolicy,
) -> io::Result<(ComparisonSummary, CacheStats)> {
    let runner = scenario.runner();
    let events_dir = dir.join("events");
    let timelines_dir = dir.join("timelines");
    fs::create_dir_all(&events_dir)?;
    fs::create_dir_all(&timelines_dir)?;

    let manifest = manifest(scenario, &runner);
    fs::write(
        dir.join("manifest.json"),
        format!("{}\n", manifest.to_json_pretty()),
    )?;

    let registry = Arc::new(MetricsRegistry::new());
    let engine = SweepEngine::new(runner).with_registry(Arc::clone(&registry));
    let cache_dir = policy.cache_dir();
    let base_policy = match cache_dir {
        Some(cache) => ExecPolicy::cached(cache, ExecPolicy::Sequential),
        None => ExecPolicy::Sequential,
    };

    let sessions = scenario.traces.sessions();
    let mut traces = Vec::with_capacity(sessions.len());
    for session in &sessions {
        let name = session.meta().name.clone();
        let mut results = Vec::with_capacity(scenario.approaches.len());
        for approach in &scenario.approaches {
            let stem = pair_stem(&name, approach.label());
            let (result, log) = engine.run_observed_pair(
                session,
                approach,
                cache_dir,
                &events_dir.join(format!("{stem}.jsonl")),
                &registry,
            )?;
            let values: Vec<_> = log
                .iter()
                // ecas-lint: allow(panic-safety, reason = "session events are plain enums; serialization cannot fail")
                .map(|e| serde_json::to_value(e).expect("session event serializes"))
                .collect();
            fs::write(
                timelines_dir.join(format!("{stem}.txt")),
                segment_timeline(&values),
            )?;
            results.push(result);
        }
        traces.push(TraceComparison::from_results(
            name,
            engine.base_energy(session, &base_policy),
            &scenario.approaches,
            &results,
        ));
    }

    fs::write(dir.join("metrics.txt"), metrics_summary(&registry.snapshot()))?;
    Ok((ComparisonSummary { traces }, engine.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approach::Approach;
    use ecas_trace::synth::context::Context;

    fn tiny_scenario() -> Scenario {
        Scenario::builder("observe-test")
            .traces(TraceSelection::Synthetic {
                context: Context::Walking,
                seconds: 30.0,
                count: 1,
                base_seed: 11,
            })
            .approaches(vec![Approach::Youtube, Approach::Ours])
            .build()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ecas-observe-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn manifest_covers_selection_and_config() {
        let scenario = Scenario::paper_evaluation();
        let runner = ExperimentRunner::paper();
        let m = manifest(&scenario, &runner);
        assert_eq!(m.traces.len(), 5);
        assert_eq!(m.traces[0].name, "trace1");
        assert_eq!(m.approaches.len(), scenario.approaches.len());
        assert_eq!(m.ladder_mbps.len(), runner.simulator().ladder().len());
        assert_eq!(m.config_hash.len(), 16);
    }

    #[test]
    fn observed_run_writes_all_artifacts_and_matches_plain_run() {
        let scenario = tiny_scenario();
        let dir = temp_dir("artifacts");
        let summary = run_observed(&scenario, &dir).unwrap();
        assert_eq!(summary.traces.len(), 1);
        // Matches the uninstrumented path.
        assert_eq!(summary, scenario.run());

        let manifest =
            RunManifest::from_json(&fs::read_to_string(dir.join("manifest.json")).unwrap())
                .unwrap();
        assert_eq!(manifest.scenario, "observe-test");

        let metrics = fs::read_to_string(dir.join("metrics.txt")).unwrap();
        assert!(metrics.contains("sim/segments"), "{metrics}");
        assert!(metrics.contains("sim/download"), "{metrics}");

        for approach in ["youtube", "ours"] {
            let stem = format!("walking-0__{approach}");
            let events =
                fs::read_to_string(dir.join("events").join(format!("{stem}.jsonl"))).unwrap();
            assert!(events.lines().count() > 15, "{stem} too short");
            assert!(events.lines().all(|l| l.starts_with('{')));
            let timeline =
                fs::read_to_string(dir.join("timelines").join(format!("{stem}.txt"))).unwrap();
            // 15 segments of a 30 s video + header + rule.
            assert_eq!(timeline.lines().count(), 17, "{timeline}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observed_warm_cache_run_is_byte_identical() {
        let scenario = tiny_scenario();
        let cache = temp_dir("obs-cache");
        let cold_dir = temp_dir("obs-cold");
        let warm_dir = temp_dir("obs-warm");
        let policy = ExecPolicy::cached(&cache, ExecPolicy::Sequential);

        let (cold, cold_stats) = run_observed_with(&scenario, &cold_dir, &policy).unwrap();
        // Two observed pairs + one base-energy cell, all misses.
        assert_eq!(cold_stats.misses, 3);
        assert_eq!(cold_stats.hits, 0);

        let (warm, warm_stats) = run_observed_with(&scenario, &warm_dir, &policy).unwrap();
        assert_eq!(warm, cold);
        assert!(warm_stats.all_hits(), "{warm_stats:?}");
        assert_eq!(warm_stats.hits, 3);

        for approach in ["youtube", "ours"] {
            let stem = format!("walking-0__{approach}");
            for sub in ["events", "timelines"] {
                let ext = if sub == "events" { "jsonl" } else { "txt" };
                let name = format!("{stem}.{ext}");
                let a = fs::read(cold_dir.join(sub).join(&name)).unwrap();
                let b = fs::read(warm_dir.join(sub).join(&name)).unwrap();
                assert_eq!(a, b, "{sub}/{name} differs between cold and warm runs");
            }
        }
        // The warm run never executed the simulator; the cache counters
        // carry the story instead.
        let metrics = fs::read_to_string(warm_dir.join("metrics.txt")).unwrap();
        assert!(metrics.contains("sweep/cache_hit"), "{metrics}");

        for d in [&cache, &cold_dir, &warm_dir] {
            fs::remove_dir_all(d).ok();
        }
    }
}
