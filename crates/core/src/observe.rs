//! Observed scenario runs: run manifests, JSONL event streams, metrics
//! summaries and per-segment timelines written next to the results.
//!
//! [`run_observed`] replays a [`Scenario`] like [`Scenario::run`] but
//! leaves a reproducibility trail in the output directory:
//!
//! ```text
//! out/
//!   manifest.json            # RunManifest: seeds, ladder, config hash
//!   metrics.txt              # counters, gauges, spans, histograms
//!   events/<trace>__<approach>.jsonl   # deterministic event streams
//!   timelines/<trace>__<approach>.txt  # per-segment timeline tables
//! ```
//!
//! Event files depend only on seeds and configuration, so a rerun of the
//! same scenario produces byte-identical JSONL and an equal manifest hash
//! — asserted by this crate's determinism tests.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

use ecas_obs::render::{metrics_summary, segment_timeline};
use ecas_obs::{stable_hash, JsonlRecorder, MetricsRegistry, RunManifest, TraceRef};
use ecas_trace::videos::EvalTraceSpec;
use ecas_types::ladder::LevelIndex;

use crate::metrics::{ComparisonSummary, TraceComparison};
use crate::report::{Scenario, TraceSelection};
use crate::runner::ExperimentRunner;

/// Builds the [`RunManifest`] describing a scenario run under `runner`.
#[must_use]
pub fn manifest(scenario: &Scenario, runner: &ExperimentRunner) -> RunManifest {
    let ladder = runner.simulator().ladder();
    RunManifest {
        scenario: scenario.name.clone(),
        crate_version: env!("CARGO_PKG_VERSION").to_string(),
        eta: runner.eta(),
        ladder_mbps: (0..ladder.len())
            .map(|i| ladder.bitrate(LevelIndex::new(i)).value())
            .collect(),
        config_hash: format!("{:016x}", stable_hash(runner.simulator().config())),
        traces: trace_refs(&scenario.traces),
        approaches: scenario
            .approaches
            .iter()
            .map(|a| a.label().to_string())
            .collect(),
    }
}

/// The `(name, seed)` pairs a selection generates, without materializing
/// the traces.
fn trace_refs(selection: &TraceSelection) -> Vec<TraceRef> {
    let spec_ref = |s: &EvalTraceSpec| TraceRef {
        name: format!("trace{}", s.id),
        seed: s.seed,
    };
    match selection {
        TraceSelection::TableV => EvalTraceSpec::table_v().iter().map(spec_ref).collect(),
        TraceSelection::TableVSubset(ids) => {
            let specs = EvalTraceSpec::table_v();
            ids.iter()
                .map(|id| {
                    spec_ref(
                        specs
                            .iter()
                            .find(|s| s.id == *id)
                            // ecas-lint: allow(panic-safety, reason = "an unknown trace id is a caller bug in a fixed experiment spec; abort loudly")
                            .unwrap_or_else(|| panic!("no Table V trace with id {id}")),
                    )
                })
                .collect()
        }
        TraceSelection::Synthetic {
            context,
            count,
            base_seed,
            ..
        } => (0..*count)
            .map(|i| TraceRef {
                name: format!("{context}-{i}"),
                seed: base_seed + u64::from(i),
            })
            .collect(),
    }
}

/// `<trace>__<approach>` file stem for per-pair artifacts.
fn pair_stem(trace: &str, approach_label: &str) -> String {
    format!("{trace}__{}", approach_label.to_lowercase())
}

/// Runs a scenario with full instrumentation, writing the manifest, one
/// JSONL event file and one timeline table per `(trace, approach)` pair,
/// and an aggregate metrics summary into `dir`.
///
/// Returns the same [`ComparisonSummary`] as [`Scenario::run`] — built
/// from the instrumented runs themselves, so nothing executes twice.
///
/// # Errors
///
/// Returns the I/O error if any artifact cannot be written.
///
/// # Panics
///
/// Panics on the same invalid inputs as [`Scenario::run`].
pub fn run_observed(scenario: &Scenario, dir: &Path) -> io::Result<ComparisonSummary> {
    let runner = ExperimentRunner::paper_with_eta(scenario.eta);
    let events_dir = dir.join("events");
    let timelines_dir = dir.join("timelines");
    fs::create_dir_all(&events_dir)?;
    fs::create_dir_all(&timelines_dir)?;

    let manifest = manifest(scenario, &runner);
    fs::write(
        dir.join("manifest.json"),
        format!("{}\n", manifest.to_json_pretty()),
    )?;

    let registry = Arc::new(MetricsRegistry::new());
    let sessions = scenario.traces.sessions();
    let mut traces = Vec::with_capacity(sessions.len());
    for session in &sessions {
        let name = session.meta().name.clone();
        let mut results = Vec::with_capacity(scenario.approaches.len());
        for approach in &scenario.approaches {
            let stem = pair_stem(&name, approach.label());
            let recorder = JsonlRecorder::create_with_registry(
                &events_dir.join(format!("{stem}.jsonl")),
                Arc::clone(&registry),
            )?;
            let (result, log) = runner.run_with_probe(session, approach, &recorder);
            recorder.flush()?;
            let values: Vec<_> = log
                .iter()
                // ecas-lint: allow(panic-safety, reason = "session events are plain enums; serialization cannot fail")
                .map(|e| serde_json::to_value(e).expect("session event serializes"))
                .collect();
            fs::write(
                timelines_dir.join(format!("{stem}.txt")),
                segment_timeline(&values),
            )?;
            results.push(result);
        }
        traces.push(TraceComparison::from_results(
            name,
            runner.base_energy(session),
            &scenario.approaches,
            &results,
        ));
    }

    fs::write(dir.join("metrics.txt"), metrics_summary(&registry.snapshot()))?;
    Ok(ComparisonSummary { traces })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approach::Approach;
    use ecas_trace::synth::context::Context;

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "observe-test".to_string(),
            traces: TraceSelection::Synthetic {
                context: Context::Walking,
                seconds: 30.0,
                count: 1,
                base_seed: 11,
            },
            approaches: vec![Approach::Youtube, Approach::Ours],
            eta: 0.5,
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ecas-observe-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn manifest_covers_selection_and_config() {
        let scenario = Scenario::paper_evaluation();
        let runner = ExperimentRunner::paper();
        let m = manifest(&scenario, &runner);
        assert_eq!(m.traces.len(), 5);
        assert_eq!(m.traces[0].name, "trace1");
        assert_eq!(m.approaches.len(), scenario.approaches.len());
        assert_eq!(m.ladder_mbps.len(), runner.simulator().ladder().len());
        assert_eq!(m.config_hash.len(), 16);
    }

    #[test]
    fn observed_run_writes_all_artifacts_and_matches_plain_run() {
        let scenario = tiny_scenario();
        let dir = temp_dir("artifacts");
        let summary = run_observed(&scenario, &dir).unwrap();
        assert_eq!(summary.traces.len(), 1);
        // Matches the uninstrumented path.
        assert_eq!(summary, scenario.run());

        let manifest =
            RunManifest::from_json(&fs::read_to_string(dir.join("manifest.json")).unwrap())
                .unwrap();
        assert_eq!(manifest.scenario, "observe-test");

        let metrics = fs::read_to_string(dir.join("metrics.txt")).unwrap();
        assert!(metrics.contains("sim/segments"), "{metrics}");
        assert!(metrics.contains("sim/download"), "{metrics}");

        for approach in ["youtube", "ours"] {
            let stem = format!("walking-0__{approach}");
            let events =
                fs::read_to_string(dir.join("events").join(format!("{stem}.jsonl"))).unwrap();
            assert!(events.lines().count() > 15, "{stem} too short");
            assert!(events.lines().all(|l| l.starts_with('{')));
            let timeline =
                fs::read_to_string(dir.join("timelines").join(format!("{stem}.txt"))).unwrap();
            // 15 segments of a 30 s video + header + rule.
            assert_eq!(timeline.lines().count(), 17, "{timeline}");
        }
        fs::remove_dir_all(&dir).ok();
    }
}
