//! One execution engine for every experiment grid.
//!
//! [`SweepEngine`] runs `(session, approach)` cells — plus the per-session
//! base-energy cell the comparison metrics need — under an [`ExecPolicy`]:
//!
//! * [`ExecPolicy::Sequential`] — one cell after another, on the caller's
//!   thread;
//! * [`ExecPolicy::Parallel`] — a work-stealing worker pool (`jobs = 0`
//!   means one worker per available core) with deterministic,
//!   sessions-major output ordering regardless of completion order;
//! * [`ExecPolicy::Cached`] — serve each cell from an on-disk JSONL cache
//!   keyed by a stable FNV-1a content hash of everything that determines
//!   the result (simulator config, ladder, η, fault spec, the full session
//!   trace, the controller), falling back to the wrapped policy for
//!   misses. Cache entries are versioned and *never trusted*: any parse or
//!   validation failure counts as [`CacheStats::corrupt`] and the cell is
//!   recomputed and rewritten.
//!
//! The cache key covers the complete cell input, so invalidation is
//! automatic: change the seed, the player config, η or the fault spec and
//! the key changes with it. Stale entries are simply never looked up
//! again; a `--cache-dir` can therefore be shared across scenarios.
//!
//! Cache activity is reported through [`CacheStats`] and, when a registry
//! is attached via [`SweepEngine::with_registry`], the
//! [`ecas_obs::names`] `sweep/cache_*` counters.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ecas_obs::{names, perf, stable_hash, JsonlRecorder, MetricsRegistry};
use ecas_sim::controller::FixedLevel;
use ecas_sim::events::EventLog;
use ecas_sim::result::SessionResult;
use ecas_sim::FaultSpec;
use ecas_trace::session::SessionTrace;
use ecas_types::ladder::LevelIndex;
use ecas_types::units::{Joules, Seconds};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::approach::Approach;
use crate::metrics::{ComparisonSummary, TraceComparison};
use crate::pool;
use crate::record::SessionRecord;
use crate::runner::ExperimentRunner;

/// Version stamp of the on-disk cache entry layout. Bumping it (or the
/// crate version) invalidates every existing entry.
pub(crate) const CACHE_FORMAT: u32 = 1;

/// The pseudo-controller label under which per-session base-energy runs
/// (everything at the lowest ladder level) are cached.
const BASE_LABEL: &str = "__base";

/// How a grid is executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Every cell on the caller's thread, in order.
    Sequential,
    /// A work-stealing worker pool; output order stays deterministic.
    Parallel {
        /// Worker count; `0` means one worker per available core.
        jobs: usize,
    },
    /// Serve cells from `dir`, computing misses under `policy`.
    Cached {
        /// The cache directory (created on first use).
        dir: PathBuf,
        /// The policy used to compute cache misses.
        policy: Box<ExecPolicy>,
    },
}

impl ExecPolicy {
    /// Auto-sized parallel execution (one worker per core).
    #[must_use]
    pub fn parallel() -> Self {
        ExecPolicy::Parallel { jobs: 0 }
    }

    /// Cached execution over `dir`, computing misses under `inner`.
    #[must_use]
    pub fn cached(dir: impl Into<PathBuf>, inner: ExecPolicy) -> Self {
        ExecPolicy::Cached {
            dir: dir.into(),
            policy: Box::new(inner),
        }
    }

    /// Builds the policy the CLI flags describe: `--jobs 1` is
    /// [`Sequential`](ExecPolicy::Sequential), any other `--jobs n` a
    /// fixed-width pool, no `--jobs` an auto-sized pool; a `--cache-dir`
    /// wraps the result in [`Cached`](ExecPolicy::Cached).
    #[must_use]
    pub fn from_options(jobs: Option<usize>, cache_dir: Option<&Path>) -> Self {
        let inner = match jobs {
            Some(1) => ExecPolicy::Sequential,
            Some(n) => ExecPolicy::Parallel { jobs: n },
            None => ExecPolicy::parallel(),
        };
        match cache_dir {
            Some(dir) => ExecPolicy::cached(dir, inner),
            None => inner,
        }
    }

    /// The outermost cache directory, if this policy caches.
    #[must_use]
    pub fn cache_dir(&self) -> Option<&Path> {
        match self {
            ExecPolicy::Cached { dir, .. } => Some(dir),
            _ => None,
        }
    }
}

/// Cache activity accumulated by a [`SweepEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Cells served from the on-disk cache.
    pub hits: u64,
    /// Cells computed because no valid entry existed.
    pub misses: u64,
    /// Entries found but rejected (bad header, version, parse failure).
    /// Every corrupt entry also counts as a miss.
    pub corrupt: u64,
    /// Failed attempts to persist a computed result.
    pub write_errors: u64,
    /// Hits served from a recorded `.ecasr` reference instead of a
    /// JSONL entry (every such hit is also counted in `hits`).
    #[serde(default)]
    pub from_record: u64,
}

impl CacheStats {
    /// Total lookups (`hits + misses`).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// `true` when at least one lookup happened and all of them hit.
    #[must_use]
    pub fn all_hits(&self) -> bool {
        self.hits > 0 && self.misses == 0 && self.corrupt == 0
    }

    /// Folds another engine's activity into this one — used when a sweep
    /// spans several engines (e.g. one per fault intensity) but should
    /// report a single cache summary.
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.corrupt += other.corrupt;
        self.write_errors += other.write_errors;
        self.from_record += other.from_record;
    }

    /// One-line render, used by the bench binaries' stderr reporting.
    /// `from_record` stays last so the CI grep over the
    /// `hits=/misses=/corrupt=` prefix keeps matching.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "cache: hits={} misses={} corrupt={} write_errors={} from_record={}",
            self.hits, self.misses, self.corrupt, self.write_errors, self.from_record
        )
    }
}

/// What a grid cell runs: a real approach or the base-energy probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    Approach(Approach),
    BaseEnergy,
}

impl Cell {
    fn label(self) -> &'static str {
        match self {
            Cell::Approach(a) => a.label(),
            Cell::BaseEnergy => BASE_LABEL,
        }
    }
}

/// One schedulable unit: a session replayed under one cell kind.
#[derive(Debug, Clone, Copy)]
struct Job<'a> {
    session: &'a SessionTrace,
    cell: Cell,
}

/// The parts of a cache key shared by every cell of one engine.
struct KeyContext {
    crate_version: String,
    eta: f64,
    config_hash: String,
    ladder: Vec<f64>,
    fault: Option<FaultSpec>,
}

/// The full, serializable identity of one grid cell. Its stable FNV-1a
/// hash is the cache key; any field changing means a different entry.
#[derive(Serialize)]
struct CellKey {
    format: u32,
    crate_version: String,
    eta: f64,
    config_hash: String,
    ladder_mbps: Vec<f64>,
    fault: Option<FaultSpec>,
    controller: String,
    session: String,
    observed: bool,
}

/// First line of every cache entry; validated on load, never trusted.
#[derive(Serialize, Deserialize)]
struct CacheHeader {
    format: u32,
    key: String,
    crate_version: String,
    controller: String,
    trace: String,
    observed: bool,
}

/// A validated entry read back from disk.
struct CachedEntry {
    result: SessionResult,
    log: Option<EventLog>,
    probe_jsonl: Option<String>,
}

enum Lookup {
    Hit(Box<CachedEntry>),
    /// Served from a recorded `.ecasr` reference (no JSONL entry).
    Record(Box<SessionResult>),
    Absent,
    Corrupt,
}

/// Executes experiment grids under an [`ExecPolicy`], with optional
/// content-addressed result caching and metrics reporting.
///
/// # Examples
///
/// ```
/// use ecas_core::sweep::{ExecPolicy, SweepEngine};
/// use ecas_core::trace::videos::EvalTraceSpec;
/// use ecas_core::{Approach, ExperimentRunner};
///
/// let sessions = vec![EvalTraceSpec::table_v()[0].generate()];
/// let engine = SweepEngine::new(ExperimentRunner::paper());
/// let approaches = [Approach::Youtube, Approach::Ours];
/// let seq = engine.run_grid(&sessions, &approaches, &ExecPolicy::Sequential);
/// let par = engine.run_grid(&sessions, &approaches, &ExecPolicy::parallel());
/// assert_eq!(seq, par);
/// ```
pub struct SweepEngine {
    runner: ExperimentRunner,
    registry: Option<Arc<MetricsRegistry>>,
    stats: Mutex<CacheStats>,
}

impl SweepEngine {
    /// Creates an engine around a configured runner.
    #[must_use]
    pub fn new(runner: ExperimentRunner) -> Self {
        Self {
            runner,
            registry: None,
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// Mirrors cache hit/miss/corrupt/write-error counts into `registry`
    /// under the [`ecas_obs::names`] `sweep/cache_*` names.
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// The underlying runner.
    #[must_use]
    pub fn runner(&self) -> &ExperimentRunner {
        &self.runner
    }

    /// Cache activity accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Runs every `(session, approach)` pair under `policy`, returning
    /// results in sessions-major order — identical across policies.
    #[must_use]
    pub fn run_grid(
        &self,
        sessions: &[SessionTrace],
        approaches: &[Approach],
        policy: &ExecPolicy,
    ) -> Vec<SessionResult> {
        let jobs: Vec<Job<'_>> = sessions
            .iter()
            .flat_map(|s| {
                approaches.iter().map(move |a| Job {
                    session: s,
                    cell: Cell::Approach(*a),
                })
            })
            .collect();
        self.execute(&jobs, policy)
    }

    /// Runs the full comparison grid — one base-energy cell plus one cell
    /// per approach, per session — and aggregates it exactly like
    /// [`ComparisonSummary::evaluate`]. Base-energy runs go through the
    /// same pool and cache as the approach cells.
    ///
    /// # Panics
    ///
    /// Panics if `approaches` omits the Youtube baseline (required by the
    /// comparison metrics).
    #[must_use]
    pub fn comparison(
        &self,
        sessions: &[SessionTrace],
        approaches: &[Approach],
        policy: &ExecPolicy,
    ) -> ComparisonSummary {
        let jobs: Vec<Job<'_>> = sessions
            .iter()
            .flat_map(|s| {
                std::iter::once(Job {
                    session: s,
                    cell: Cell::BaseEnergy,
                })
                .chain(approaches.iter().map(move |a| Job {
                    session: s,
                    cell: Cell::Approach(*a),
                }))
            })
            .collect();
        let results = self.execute(&jobs, policy);
        let stride = approaches.len() + 1;
        let traces = sessions
            .iter()
            .zip(results.chunks(stride))
            .filter_map(|(session, chunk)| {
                let (base, rows) = chunk.split_first()?;
                Some(TraceComparison::from_results(
                    session.meta().name.clone(),
                    base.total_energy(),
                    approaches,
                    rows,
                ))
            })
            .collect();
        ComparisonSummary { traces }
    }

    /// The session's base energy (Fig. 5c), served through the cache when
    /// `policy` caches.
    #[must_use]
    pub fn base_energy(&self, session: &SessionTrace, policy: &ExecPolicy) -> Joules {
        let job = Job {
            session,
            cell: Cell::BaseEnergy,
        };
        self.execute(std::slice::from_ref(&job), policy)
            .into_iter()
            .next()
            .map(|r| r.total_energy())
            .unwrap_or_else(|| self.runner.base_energy(session))
    }

    /// Like [`ExperimentRunner::run_with_probe`] but cache-aware: the
    /// deterministic event stream is written to `events_path` either by a
    /// live instrumented run (miss — the stream is then stored alongside
    /// the result) or byte-for-byte from the cache (hit — the simulator
    /// never runs, so `registry` accumulates no `sim/*` metrics for the
    /// pair).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if `events_path` cannot be written. Cache
    /// *store* failures are counted in [`CacheStats::write_errors`], not
    /// returned.
    pub fn run_observed_pair(
        &self,
        session: &SessionTrace,
        approach: &Approach,
        cache_dir: Option<&Path>,
        events_path: &Path,
        registry: &Arc<MetricsRegistry>,
    ) -> io::Result<(SessionResult, EventLog)> {
        let job = Job {
            session,
            cell: Cell::Approach(*approach),
        };
        let cache = match cache_dir {
            Some(dir) => {
                fs::create_dir_all(dir)?;
                let key = self
                    .keys_for(std::slice::from_ref(&job), true)
                    .into_iter()
                    .next()
                    .unwrap_or_default();
                Some((dir, key))
            }
            None => None,
        };

        if let Some((dir, key)) = &cache {
            match self.load(dir, key, &job, true) {
                Lookup::Hit(entry) => {
                    let entry = *entry;
                    if let (Some(log), Some(probe)) = (entry.log, entry.probe_jsonl) {
                        self.note_hit();
                        fs::write(events_path, probe)?;
                        return Ok((entry.result, log));
                    }
                    self.note_corrupt();
                }
                // Records carry no probe stream, so `load` never
                // returns one for an observed lookup.
                Lookup::Record(_) => {}
                Lookup::Corrupt => self.note_corrupt(),
                Lookup::Absent => {}
            }
            self.note_miss();
        }

        let recorder = JsonlRecorder::create_with_registry(events_path, Arc::clone(registry))?;
        let (result, log) = self.runner.run_with_probe(session, approach, &recorder);
        recorder.flush()?;
        drop(recorder);

        if let Some((dir, key)) = &cache {
            let probe = fs::read_to_string(events_path).unwrap_or_default();
            if self
                .store(dir, key, &job, &result, Some((&log, &probe)))
                .is_err()
            {
                self.note_write_error();
            }
        }
        Ok((result, log))
    }

    // ---------------------------------------------------------------- //
    // Execution
    // ---------------------------------------------------------------- //

    fn compute(&self, job: &Job<'_>) -> SessionResult {
        match job.cell {
            Cell::Approach(a) => self.runner.run(job.session, &a),
            Cell::BaseEnergy => {
                let mut lowest = FixedLevel::new(LevelIndex::new(0));
                self.runner.simulator().run(job.session, &mut lowest)
            }
        }
    }

    fn execute(&self, jobs: &[Job<'_>], policy: &ExecPolicy) -> Vec<SessionResult> {
        // The engine is a sanctioned wall-clock seam (see ecas-obs's perf
        // module): when a registry is attached, each grid execution
        // records its span and the derived simulated-seconds-per-
        // core-second throughput gauge. Metrics only — the deterministic
        // event stream never sees the clock.
        let watch = self.registry.as_ref().map(|_| perf::Stopwatch::start());
        let results = match policy {
            ExecPolicy::Sequential => jobs.iter().map(|j| self.compute(j)).collect(),
            ExecPolicy::Parallel { jobs: n } => self.execute_parallel(jobs, *n),
            ExecPolicy::Cached { dir, policy } => self.execute_cached(jobs, dir, policy),
        };
        if let (Some(watch), Some(registry)) = (watch, &self.registry) {
            registry.record_span(names::SWEEP_EXECUTE_SPAN, watch.elapsed_nanos());
            let sim: Seconds = jobs.iter().map(|j| j.session.meta().video_length).sum();
            registry.gauge(
                names::PERF_SWEEP_SESS_S_PER_CORE_S,
                perf::session_seconds_per_core_second(sim, Seconds::new(watch.elapsed_seconds())),
            );
        }
        results
    }

    /// The shared worker pool ([`crate::pool`]): a next-index counter
    /// hands jobs to workers as they free up; each result lands in its
    /// preassigned slot, so the output order matches
    /// [`ExecPolicy::Sequential`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    fn execute_parallel(&self, jobs: &[Job<'_>], requested: usize) -> Vec<SessionResult> {
        pool::run_ordered(jobs, requested, |job| self.compute(job))
    }

    fn execute_cached(&self, jobs: &[Job<'_>], dir: &Path, inner: &ExecPolicy) -> Vec<SessionResult> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let dir_ok = fs::create_dir_all(dir).is_ok();
        if !dir_ok {
            // Degrade to plain computation: one write error for the
            // unusable directory, every cell a miss.
            self.note_write_error();
        }
        let keys = self.keys_for(jobs, false);
        let mut slots: Vec<Option<SessionResult>> = jobs
            .iter()
            .zip(&keys)
            .map(|(job, key)| {
                if !dir_ok {
                    return None;
                }
                match self.load(dir, key, job, false) {
                    Lookup::Hit(entry) => {
                        self.note_hit();
                        Some(entry.result)
                    }
                    Lookup::Record(result) => {
                        self.note_record_hit();
                        Some(*result)
                    }
                    Lookup::Absent => None,
                    Lookup::Corrupt => {
                        self.note_corrupt();
                        None
                    }
                }
            })
            .collect();

        let missing: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.is_none().then_some(i))
            .collect();
        for _ in &missing {
            self.note_miss();
        }
        let miss_jobs: Vec<Job<'_>> = missing
            .iter()
            .filter_map(|&i| jobs.get(i).copied())
            .collect();
        let computed = self.execute(&miss_jobs, inner);
        for (&slot_idx, result) in missing.iter().zip(computed) {
            if dir_ok {
                if let (Some(job), Some(key)) = (jobs.get(slot_idx), keys.get(slot_idx)) {
                    if self.store(dir, key, job, &result, None).is_err() {
                        self.note_write_error();
                    }
                }
            }
            if let Some(slot) = slots.get_mut(slot_idx) {
                *slot = Some(result);
            }
        }
        slots
            .into_iter()
            // ecas-lint: allow(panic-safety, reason = "every index is either a hit or appears in `missing` and is filled from the computed batch; an empty slot is an engine bug worth crashing on")
            .map(|r| r.expect("every sweep slot filled"))
            .collect()
    }

    // ---------------------------------------------------------------- //
    // Cache keys
    // ---------------------------------------------------------------- //

    fn key_context(&self) -> KeyContext {
        let sim = self.runner.simulator();
        let ladder = sim.ladder();
        KeyContext {
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            eta: self.runner.eta(),
            config_hash: format!("{:016x}", stable_hash(sim.config())),
            ladder: (0..ladder.len())
                .map(|i| ladder.bitrate(LevelIndex::new(i)).value())
                .collect(),
            fault: sim.faults().copied(),
        }
    }

    /// One cache key per job. The full session trace is content-hashed
    /// once per distinct session (jobs arrive sessions-major, so a
    /// single-entry memo suffices).
    fn keys_for(&self, jobs: &[Job<'_>], observed: bool) -> Vec<String> {
        let ctx = self.key_context();
        let mut memo: Option<(*const SessionTrace, String)> = None;
        jobs.iter()
            .map(|job| {
                let ptr: *const SessionTrace = job.session;
                let session_hash = match &memo {
                    Some((p, h)) if std::ptr::eq(*p, ptr) => h.clone(),
                    _ => {
                        let h = format!("{:016x}", stable_hash(job.session));
                        memo = Some((ptr, h.clone()));
                        h
                    }
                };
                let key = CellKey {
                    format: CACHE_FORMAT,
                    crate_version: ctx.crate_version.clone(),
                    eta: ctx.eta,
                    config_hash: ctx.config_hash.clone(),
                    ladder_mbps: ctx.ladder.clone(),
                    fault: ctx.fault,
                    controller: job.cell.label().to_string(),
                    session: session_hash,
                    observed,
                };
                format!("{:016x}", stable_hash(&key))
            })
            .collect()
    }

    // ---------------------------------------------------------------- //
    // Cache I/O
    // ---------------------------------------------------------------- //

    fn load(&self, dir: &Path, key: &str, job: &Job<'_>, observed: bool) -> Lookup {
        let text = match fs::read_to_string(entry_path(dir, key)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // No JSONL entry. A recorded `.ecasr` reference can stand
                // in for an unobserved cell; observed pairs need the probe
                // stream that records do not carry.
                if observed {
                    return Lookup::Absent;
                }
                return self.load_record(dir, key);
            }
            Err(_) => return Lookup::Corrupt,
        };
        parse_entry(&text, key, job, observed)
            .map_or(Lookup::Corrupt, |entry| Lookup::Hit(Box::new(entry)))
    }

    /// Attempts to serve a cell from a recorded `.ecasr` reference in the
    /// cache directory. Records are never trusted: the container's own
    /// content hash is checked by [`SessionRecord::from_bytes`], and the
    /// cache key recomputed from the decoded record (via
    /// [`record_cell_key`], which hashes the record's *own* crate version
    /// and scenario) must equal the requested key — a stale or renamed
    /// record hashes to a different key and is reported corrupt, which
    /// the caller turns into a miss + recompute.
    fn load_record(&self, dir: &Path, key: &str) -> Lookup {
        let bytes = match fs::read(record_path(dir, key)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Lookup::Absent,
            Err(_) => return Lookup::Corrupt,
        };
        let Ok(record) = SessionRecord::from_bytes(&bytes) else {
            return Lookup::Corrupt;
        };
        if record_cell_key(&record) != key {
            return Lookup::Corrupt;
        }
        Lookup::Record(Box::new(record.reference))
    }

    /// Writes an entry via a temp file + rename so a concurrent reader
    /// never sees a half-written entry (it sees the old one or none).
    ///
    /// The temp name embeds the process id and a process-wide counter:
    /// two writers racing on the same key (same process or two processes
    /// sharing a `--cache-dir`) each write their own temp file, and the
    /// final `rename` is atomic, so the published entry is always one
    /// writer's complete bytes — never an interleaving.
    fn store(
        &self,
        dir: &Path,
        key: &str,
        job: &Job<'_>,
        result: &SessionResult,
        observed: Option<(&EventLog, &str)>,
    ) -> io::Result<()> {
        let header = CacheHeader {
            format: CACHE_FORMAT,
            key: key.to_string(),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            controller: job.cell.label().to_string(),
            trace: job.session.meta().name.clone(),
            observed: observed.is_some(),
        };
        let mut text = String::new();
        text.push_str(&to_json(&header)?);
        text.push('\n');
        text.push_str(&to_json(result)?);
        text.push('\n');
        if let Some((log, probe)) = observed {
            text.push_str(&to_json(log)?);
            text.push('\n');
            text.push_str(&to_json(&probe.to_string())?);
            text.push('\n');
        }
        static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
        let tmp = dir.join(format!(
            "{key}.{}.{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, text)?;
        fs::rename(&tmp, entry_path(dir, key))
    }

    // ---------------------------------------------------------------- //
    // Stats
    // ---------------------------------------------------------------- //

    fn note_hit(&self) {
        self.stats.lock().hits += 1;
        self.bump(names::SWEEP_CACHE_HIT);
    }

    /// A hit served from a recorded reference counts as a regular hit
    /// too, so `all_hits()` keeps meaning "zero simulator runs".
    fn note_record_hit(&self) {
        let mut stats = self.stats.lock();
        stats.hits += 1;
        stats.from_record += 1;
        drop(stats);
        self.bump(names::SWEEP_CACHE_HIT);
        self.bump(names::SWEEP_CACHE_FROM_RECORD);
    }

    fn note_miss(&self) {
        self.stats.lock().misses += 1;
        self.bump(names::SWEEP_CACHE_MISS);
    }

    fn note_corrupt(&self) {
        self.stats.lock().corrupt += 1;
        self.bump(names::SWEEP_CACHE_CORRUPT);
    }

    fn note_write_error(&self) {
        self.stats.lock().write_errors += 1;
        self.bump(names::SWEEP_CACHE_WRITE_ERROR);
    }

    fn bump(&self, name: &'static str) {
        if let Some(registry) = &self.registry {
            registry.add(name, 1);
        }
    }
}

fn entry_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.jsonl"))
}

/// Where a recorded reference for `key` lives inside a cache or corpus
/// directory: `<key>.ecasr`.
pub(crate) fn record_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.{}", ecas_trace::record::RECORD_EXTENSION))
}

/// The sweep cache key a record answers for: the same [`CellKey`] an
/// engine built from the record's scenario would compute for the
/// unobserved cell, derived entirely from the record itself.
///
/// Deliberately hashes the record's *own* `crate_version` — not this
/// build's — so a record produced by an older crate hashes to a key
/// nobody asks for instead of masquerading as current.
pub(crate) fn record_cell_key(record: &SessionRecord) -> String {
    let runner = record.scenario.runner();
    let key = CellKey {
        format: CACHE_FORMAT,
        crate_version: record.crate_version.clone(),
        eta: record.scenario.eta,
        config_hash: format!("{:016x}", stable_hash(runner.simulator().config())),
        ladder_mbps: record.ladder_mbps.clone(),
        fault: record.scenario.fault,
        controller: record.scenario.approach.label().to_string(),
        session: format!("{:016x}", record.trace_hash),
        observed: false,
    };
    format!("{:016x}", stable_hash(&key))
}

fn to_json<T: Serialize>(value: &T) -> io::Result<String> {
    serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("cache serialize: {e}")))
}

/// Parses and validates one entry. Any mismatch — wrong format, wrong
/// key, wrong crate version, wrong cell identity, malformed payload,
/// trailing garbage — rejects the whole entry.
fn parse_entry(text: &str, key: &str, job: &Job<'_>, observed: bool) -> Option<CachedEntry> {
    let mut lines = text.lines();
    let header: CacheHeader = serde_json::from_str(lines.next()?).ok()?;
    let valid = header.format == CACHE_FORMAT
        && header.key == key
        && header.crate_version == env!("CARGO_PKG_VERSION")
        && header.controller == job.cell.label()
        && header.trace == job.session.meta().name
        && header.observed == observed;
    if !valid {
        return None;
    }
    let result: SessionResult = serde_json::from_str(lines.next()?).ok()?;
    let (log, probe_jsonl) = if observed {
        let log: EventLog = serde_json::from_str(lines.next()?).ok()?;
        let probe: String = serde_json::from_str(lines.next()?).ok()?;
        (Some(log), Some(probe))
    } else {
        (None, None)
    };
    if lines.next().is_some() {
        return None;
    }
    Some(CachedEntry {
        result,
        log,
        probe_jsonl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_trace::synth::context::{Context, ContextSchedule};
    use ecas_trace::synth::SessionGenerator;
    use ecas_types::units::Seconds;

    fn sessions() -> Vec<SessionTrace> {
        vec![SessionGenerator::new(
            "sweep-test",
            ContextSchedule::constant(Context::Walking),
            Seconds::new(40.0),
            5,
        )
        .generate()]
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ecas-sweep-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn from_options_composes_policies() {
        assert_eq!(
            ExecPolicy::from_options(Some(1), None),
            ExecPolicy::Sequential
        );
        assert_eq!(
            ExecPolicy::from_options(Some(3), None),
            ExecPolicy::Parallel { jobs: 3 }
        );
        assert_eq!(ExecPolicy::from_options(None, None), ExecPolicy::parallel());
        let cached = ExecPolicy::from_options(Some(1), Some(Path::new("/tmp/c")));
        assert_eq!(cached.cache_dir(), Some(Path::new("/tmp/c")));
        assert_eq!(
            cached,
            ExecPolicy::cached("/tmp/c", ExecPolicy::Sequential)
        );
    }

    #[test]
    fn cold_then_warm_cache_round_trip() {
        let dir = temp_dir("roundtrip");
        let sessions = sessions();
        let approaches = [Approach::Youtube, Approach::Ours];
        let policy = ExecPolicy::cached(&dir, ExecPolicy::Sequential);

        let engine = SweepEngine::new(ExperimentRunner::paper());
        let cold = engine.run_grid(&sessions, &approaches, &policy);
        let stats = engine.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 0);

        let warm_engine = SweepEngine::new(ExperimentRunner::paper());
        let warm = warm_engine.run_grid(&sessions, &approaches, &policy);
        let warm_stats = warm_engine.stats();
        assert_eq!(warm, cold);
        assert!(warm_stats.all_hits(), "{warm_stats:?}");
        assert_eq!(warm_stats.hits, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_are_recomputed_and_repaired() {
        let dir = temp_dir("corrupt");
        let sessions = sessions();
        let approaches = [Approach::Youtube];
        let policy = ExecPolicy::cached(&dir, ExecPolicy::Sequential);

        let engine = SweepEngine::new(ExperimentRunner::paper());
        let cold = engine.run_grid(&sessions, &approaches, &policy);

        // Truncate every entry to garbage.
        for entry in fs::read_dir(&dir).unwrap() {
            fs::write(entry.unwrap().path(), "{ not json").unwrap();
        }

        let repaired_engine = SweepEngine::new(ExperimentRunner::paper());
        let repaired = repaired_engine.run_grid(&sessions, &approaches, &policy);
        let stats = repaired_engine.stats();
        assert_eq!(repaired, cold);
        assert_eq!(stats.corrupt, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);

        // The repaired entry serves the next run.
        let warm_engine = SweepEngine::new(ExperimentRunner::paper());
        assert_eq!(warm_engine.run_grid(&sessions, &approaches, &policy), cold);
        assert!(warm_engine.stats().all_hits());
        fs::remove_dir_all(&dir).ok();
    }

    /// Regression: `store()` used to write every writer's entry to the
    /// same `{key}.tmp` path, so two writers racing on one key could
    /// interleave `fs::write`/`fs::rename` and publish a mixed or
    /// truncated entry — breaking the documented "reader never sees a
    /// half-written entry" guarantee. With per-writer temp names, readers
    /// racing the writers must only ever observe a complete entry or
    /// none.
    #[test]
    fn concurrent_stores_never_publish_torn_entries() {
        let dir = temp_dir("race");
        fs::create_dir_all(&dir).unwrap();
        let engine = SweepEngine::new(ExperimentRunner::paper());
        let sessions = sessions();
        let job = Job {
            session: &sessions[0],
            cell: Cell::Approach(Approach::Ours),
        };
        let key = engine.keys_for(std::slice::from_ref(&job), false).remove(0);
        let result = engine
            .run_grid(&sessions, &[Approach::Ours], &ExecPolicy::Sequential)
            .remove(0);

        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        engine.store(&dir, &key, &job, &result, None).unwrap();
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..400 {
                    match engine.load(&dir, &key, &job, false) {
                        Lookup::Hit(_) | Lookup::Record(_) | Lookup::Absent => {}
                        Lookup::Corrupt => panic!("reader observed a torn cache entry"),
                    }
                }
            });
        });

        // The settled entry is a complete, valid hit …
        assert!(matches!(
            engine.load(&dir, &key, &job, false),
            Lookup::Hit(_)
        ));
        // … and every temp file was consumed by its own rename.
        let litter: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect();
        assert!(litter.is_empty(), "temp litter left behind: {litter:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorded_references_serve_unobserved_cells() {
        use crate::record::{RecordScenario, RecordedSession, SessionRecord};

        let dir = temp_dir("from-record");
        fs::create_dir_all(&dir).unwrap();
        let scenario = RecordScenario {
            session: RecordedSession::Synthetic {
                context: Context::Walking,
                seconds: 40.0,
                seed: 5,
            },
            approach: Approach::Ours,
            eta: 0.5,
            fault: None,
        };
        let record = SessionRecord::record(scenario).unwrap();
        let key = record_cell_key(&record);
        record.save(record_path(&dir, &key)).unwrap();

        // The record regenerates the same trace the sweep test fixture
        // uses, so its key matches the engine's own — the corpus file
        // alone warms the cell.
        let sessions = vec![record.regenerate_trace().unwrap()];
        let policy = ExecPolicy::cached(&dir, ExecPolicy::Sequential);
        let engine = SweepEngine::new(ExperimentRunner::paper());
        let served = engine.run_grid(&sessions, &[Approach::Ours], &policy);
        let stats = engine.stats();
        assert!(stats.all_hits(), "{stats:?}");
        assert_eq!(stats.from_record, 1);
        assert_eq!(served, vec![record.reference.clone()]);
        assert!(
            !entry_path(&dir, &key).exists(),
            "a record hit must not rewrite a JSONL entry"
        );

        // Observed lookups must never be served from a record.
        assert!(matches!(
            engine.load(&dir, &key, &Job {
                session: &sessions[0],
                cell: Cell::Approach(Approach::Ours),
            }, true),
            Lookup::Absent
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_or_stale_records_degrade_to_recompute() {
        use crate::record::{RecordScenario, RecordedSession, SessionRecord};

        let dir = temp_dir("record-corrupt");
        fs::create_dir_all(&dir).unwrap();
        let scenario = RecordScenario {
            session: RecordedSession::Synthetic {
                context: Context::Walking,
                seconds: 40.0,
                seed: 5,
            },
            approach: Approach::Ours,
            eta: 0.5,
            fault: None,
        };
        let record = SessionRecord::record(scenario).unwrap();
        let key = record_cell_key(&record);
        // Truncated container bytes under the right name.
        fs::write(record_path(&dir, &key), b"ECASR garbage").unwrap();

        let sessions = vec![record.regenerate_trace().unwrap()];
        let policy = ExecPolicy::cached(&dir, ExecPolicy::Sequential);
        let engine = SweepEngine::new(ExperimentRunner::paper());
        let computed = engine.run_grid(&sessions, &[Approach::Ours], &policy);
        let stats = engine.stats();
        assert_eq!(stats.corrupt, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.from_record, 0);
        assert_eq!(computed, vec![record.reference.clone()]);
        // The recompute repaired a JSONL entry that serves the next run.
        let warm = SweepEngine::new(ExperimentRunner::paper());
        assert_eq!(warm.run_grid(&sessions, &[Approach::Ours], &policy), computed);
        assert!(warm.stats().all_hits());
        assert_eq!(warm.stats().from_record, 0);

        // A valid record renamed under a foreign key is rejected too.
        let stale_dir = temp_dir("record-stale");
        fs::create_dir_all(&stale_dir).unwrap();
        let mut stale = record.clone();
        stale.crate_version = "0.0.0-stale".to_string();
        assert_ne!(record_cell_key(&stale), key, "version must key");
        stale.save(record_path(&stale_dir, &key)).unwrap();
        let stale_engine = SweepEngine::new(ExperimentRunner::paper());
        let stale_policy = ExecPolicy::cached(&stale_dir, ExecPolicy::Sequential);
        let results = stale_engine.run_grid(&sessions, &[Approach::Ours], &stale_policy);
        assert_eq!(results, computed);
        assert_eq!(stale_engine.stats().corrupt, 1);
        assert_eq!(stale_engine.stats().from_record, 0);
        fs::remove_dir_all(&dir).ok();
        fs::remove_dir_all(&stale_dir).ok();
    }

    #[test]
    fn cache_key_separates_eta_fault_and_observed() {
        let engine = SweepEngine::new(ExperimentRunner::paper());
        let sessions = sessions();
        let job = Job {
            session: &sessions[0],
            cell: Cell::Approach(Approach::Ours),
        };
        let jobs = std::slice::from_ref(&job);
        let base = engine.keys_for(jobs, false);
        assert_eq!(engine.keys_for(jobs, false), base, "keys must be stable");
        assert_ne!(engine.keys_for(jobs, true), base, "observed flag must key");

        let other_eta = SweepEngine::new(ExperimentRunner::paper_with_eta(0.9));
        assert_ne!(other_eta.keys_for(jobs, false), base, "eta must key");

        let faulty = SweepEngine::new(ExperimentRunner::new(
            ExperimentRunner::paper()
                .simulator()
                .clone()
                .with_faults(FaultSpec::scaled(0.5, 7)),
            0.5,
        ));
        assert_ne!(faulty.keys_for(jobs, false), base, "fault spec must key");

        let youtube_job = Job {
            session: &sessions[0],
            cell: Cell::Approach(Approach::Youtube),
        };
        assert_ne!(
            engine.keys_for(std::slice::from_ref(&youtube_job), false),
            base,
            "controller must key"
        );
    }

    #[test]
    fn parallel_matches_sequential_through_engine() {
        let engine = SweepEngine::new(ExperimentRunner::paper());
        let sessions = sessions();
        let approaches = [Approach::Youtube, Approach::Ours, Approach::Bba];
        let seq = engine.run_grid(&sessions, &approaches, &ExecPolicy::Sequential);
        let par = engine.run_grid(&sessions, &approaches, &ExecPolicy::parallel());
        let two = engine.run_grid(&sessions, &approaches, &ExecPolicy::Parallel { jobs: 2 });
        assert_eq!(seq, par);
        assert_eq!(seq, two);
    }

    #[test]
    fn comparison_matches_legacy_evaluate() {
        let engine = SweepEngine::new(ExperimentRunner::paper());
        let sessions = sessions();
        let approaches = Approach::paper_set();
        let via_engine = engine.comparison(&sessions, &approaches, &ExecPolicy::Sequential);
        let legacy =
            ComparisonSummary::evaluate(engine.runner(), &sessions, &approaches);
        assert_eq!(via_engine, legacy);
    }
}
