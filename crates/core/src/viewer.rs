//! Viewer-abandonment analysis.
//!
//! The paper's ref \[6\] (Hu & Cao, INFOCOM'15 — the same group's earlier
//! work) showed that much of streaming's energy is wasted on video the
//! viewer never watches because they quit early. A player that prebuffers
//! aggressively wastes more. This module quantifies that effect for any
//! simulated session: given a quit time, how much downloaded data — and
//! how much radio energy — was spent on segments past the playhead?

use ecas_sim::result::SessionResult;
use ecas_types::units::{Joules, MegaBytes, Seconds};
use serde::{Deserialize, Serialize};

/// What an early quit wastes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
// ecas-lint: allow(pub-surface, reason = "re-exported viewer-model result type; part of the crate's published surface")
pub struct QuitAnalysis {
    /// The quit time analyzed.
    pub quit_at: Seconds,
    /// Seconds of video actually watched by the quit time.
    pub watched: Seconds,
    /// Segments downloaded by the quit time but never watched.
    pub wasted_segments: usize,
    /// Data volume of those segments.
    pub wasted_data: MegaBytes,
    /// Radio energy spent downloading them.
    pub wasted_radio_energy: Joules,
}

/// Analyzes what would be wasted if the viewer quit `quit_at` seconds into
/// the session (wall-clock).
///
/// # Examples
///
/// ```
/// use ecas_core::viewer::quit_analysis;
/// use ecas_core::{Approach, ExperimentRunner};
/// use ecas_core::trace::videos::EvalTraceSpec;
/// use ecas_core::types::units::Seconds;
///
/// let session = EvalTraceSpec::table_v()[0].generate();
/// let result = ExperimentRunner::paper().run(&session, &Approach::Youtube);
/// let quit = quit_analysis(&result, Seconds::new(2.0), Seconds::new(60.0));
/// // Quitting mid-session strands the in-flight buffer.
/// assert!(quit.wasted_segments > 0);
/// ```
///
/// The playhead at the quit time is reconstructed from the session's
/// startup delay and the stalls recorded before the quit; segments whose
/// download completed before the quit but whose playback slot lies beyond
/// the playhead count as wasted.
///
/// # Panics
///
/// Panics if the session has no tasks.
#[must_use]
pub fn quit_analysis(
    result: &SessionResult,
    segment_duration: Seconds,
    quit_at: Seconds,
) -> QuitAnalysis {
    assert!(!result.tasks.is_empty(), "session has no tasks");
    let tau = segment_duration.value();
    let quit = quit_at.value();

    // Stall time accrued before the quit: stalls are recorded per task at
    // the task's download end.
    let stalls_before: f64 = result
        .tasks
        .iter()
        .filter(|t| t.download_end.value() <= quit)
        .map(|t| t.rebuffer.value())
        .sum();
    let playhead =
        (quit - result.startup_delay.value() - stalls_before).clamp(0.0, result.played.value());
    // Epsilon absorbs rounding in `quit - startup - stalls`: at the exact
    // end of a session the playhead can land a few ulps short of a segment
    // boundary, which would misclassify the final played segment as wasted.
    let watched_segments = (playhead / tau + 1e-9).floor() as usize;

    let mut wasted_segments = 0usize;
    let mut wasted_data = 0.0;
    let mut wasted_energy = 0.0;
    for task in &result.tasks {
        if task.download_end.value() <= quit && task.task.value() >= watched_segments {
            wasted_segments += 1;
            wasted_data += task.size.value();
            wasted_energy += task.radio_energy.value();
        }
    }

    QuitAnalysis {
        quit_at,
        watched: Seconds::new(playhead),
        wasted_segments,
        wasted_data: MegaBytes::new(wasted_data),
        wasted_radio_energy: Joules::new(wasted_energy),
    }
}

/// Expected waste under a quit-time distribution: averages
/// [`quit_analysis`] over quits at the given wall-clock fractions of the
/// session.
///
/// # Panics
///
/// Panics if `quit_fractions` is empty or contains values outside `[0, 1]`.
#[must_use]
// ecas-lint: allow(pub-surface, reason = "re-exported viewer-model API (Sec. V quit analysis); exercised by unit tests")
pub fn expected_waste(
    result: &SessionResult,
    segment_duration: Seconds,
    quit_fractions: &[f64],
) -> QuitAnalysis {
    assert!(!quit_fractions.is_empty(), "no quit fractions given");
    let wall = result.wall_time.value();
    let mut watched = 0.0;
    let mut segments = 0usize;
    let mut data = 0.0;
    let mut energy = 0.0;
    for &f in quit_fractions {
        assert!((0.0..=1.0).contains(&f), "quit fraction {f} outside [0, 1]");
        let q = quit_analysis(result, segment_duration, Seconds::new(wall * f));
        watched += q.watched.value();
        segments += q.wasted_segments;
        data += q.wasted_data.value();
        energy += q.wasted_radio_energy.value();
    }
    let n = quit_fractions.len() as f64;
    QuitAnalysis {
        quit_at: Seconds::new(wall * quit_fractions.iter().sum::<f64>() / n),
        watched: Seconds::new(watched / n),
        wasted_segments: (segments as f64 / n).round() as usize,
        wasted_data: MegaBytes::new(data / n),
        wasted_radio_energy: Joules::new(energy / n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Approach, ExperimentRunner};
    use ecas_trace::synth::context::{Context, ContextSchedule};
    use ecas_trace::synth::SessionGenerator;

    fn run(approach: Approach) -> SessionResult {
        let session = SessionGenerator::new(
            "quit",
            ContextSchedule::constant(Context::QuietRoom),
            Seconds::new(120.0),
            3,
        )
        .generate();
        ExperimentRunner::paper().run(&session, &approach)
    }

    #[test]
    fn quit_at_end_wastes_only_the_buffer_tail() {
        let r = run(Approach::Youtube);
        let q = quit_analysis(&r, Seconds::new(2.0), r.wall_time);
        // At the very end everything downloaded has been played.
        assert_eq!(q.wasted_segments, 0);
        assert_eq!(q.wasted_data, MegaBytes::zero());
    }

    #[test]
    fn early_quit_wastes_roughly_the_buffer() {
        let r = run(Approach::Youtube);
        // Quit mid-session: the ~30 s buffer (≈15 segments) is in flight.
        let q = quit_analysis(&r, Seconds::new(2.0), Seconds::new(60.0));
        assert!(
            (10..=18).contains(&q.wasted_segments),
            "wasted {} segments",
            q.wasted_segments
        );
        assert!(q.wasted_radio_energy.value() > 0.0);
        assert!(q.watched.value() < 60.0);
    }

    #[test]
    fn quit_before_startup_wastes_everything_downloaded() {
        let r = run(Approach::Youtube);
        // Quit strictly before the first frame renders.
        let quit = r.startup_delay.value() * 0.5;
        let q = quit_analysis(&r, Seconds::new(2.0), Seconds::new(quit));
        assert_eq!(q.watched, Seconds::zero());
        let downloaded_by_then = r
            .tasks
            .iter()
            .filter(|t| t.download_end.value() <= quit)
            .count();
        assert_eq!(q.wasted_segments, downloaded_by_then);
    }

    #[test]
    fn lower_bitrate_wastes_less_data_on_quit() {
        let youtube = run(Approach::Youtube);
        let ours = run(Approach::Ours);
        let q_youtube = quit_analysis(&youtube, Seconds::new(2.0), Seconds::new(60.0));
        let q_ours = quit_analysis(&ours, Seconds::new(2.0), Seconds::new(60.0));
        assert!(
            q_ours.wasted_data < q_youtube.wasted_data,
            "ours wasted {} vs youtube {}",
            q_ours.wasted_data,
            q_youtube.wasted_data
        );
    }

    #[test]
    fn expected_waste_averages() {
        let r = run(Approach::Youtube);
        let e = expected_waste(&r, Seconds::new(2.0), &[0.25, 0.5, 0.75]);
        assert!(e.wasted_segments > 0);
        assert!(e.watched.value() > 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_fraction() {
        let r = run(Approach::Youtube);
        let _ = expected_waste(&r, Seconds::new(2.0), &[1.5]);
    }
}
