//! Fleet-scale population simulation with streaming aggregation.
//!
//! The paper's evaluation runs a handful of Table V sessions; the
//! ROADMAP north star is a deployment serving millions of users. This
//! module closes that gap without ever holding a fleet in memory:
//!
//! 1. a [`PopulationSpec`](ecas_trace::population::PopulationSpec)
//!    describes the fleet intensively (diurnal arrivals, context /
//!    battery / signal mix) — user `i` is a pure function of the fleet
//!    seed, so no per-user state exists up front;
//! 2. [`FleetEngine::run`] synthesizes users in bounded-size batches
//!    (reusing one [`SessionBatch`] spine), streams each batch through
//!    [`SweepEngine`]'s work-stealing pool, and folds the batch's
//!    results into a [`FleetReducer`] **in global user order** — then
//!    drops them;
//! 3. the reducer keeps only aggregates: counters, fixed-bin QoE and
//!    energy histograms ([`FixedHistogram`]), per-class [`ClassReport`]
//!    slices (context / battery / signal) and an arrivals-by-hour
//!    profile. Peak memory is O(batch), independent of fleet size.
//!
//! **Determinism.** `SweepEngine::run_grid` returns results in
//! sessions-major order regardless of [`ExecPolicy`], and the reducer
//! folds them in that order across batches, so the aggregate report is
//! byte-identical for `Sequential` and `Parallel { jobs }` execution
//! *and* invariant to the batch size (the floating-point sums
//! accumulate in the same global order either way). CI asserts both.
//!
//! **Shards.** [`FleetReducer::merge`] combines independently built
//! reducers. Integer state (counters, histograms) merges exactly;
//! floating-point sums merge associatively up to the usual rounding, so
//! sharded and single-pass runs agree to within f64 round-off (the
//! engine's own streaming path never relies on merge — it folds one
//! reducer in order precisely to keep the byte-identity guarantee).
//!
//! Percentile tails use the workspace's shared
//! [`nearest_rank`](ecas_types::float::nearest_rank) convention over
//! the histogram's cumulative counts, reported at bin midpoints.

use std::sync::Arc;

use ecas_obs::{names, perf, MetricsRegistry};
use ecas_sim::result::SessionResult;
use ecas_trace::population::{BatteryState, FleetContext, PopulationSpec, SessionBatch, SignalTier, UserSpec};
use ecas_types::float::nearest_rank;
use ecas_types::units::MegaBytes;
use serde::{Deserialize, Serialize};

use crate::approach::Approach;
use crate::runner::ExperimentRunner;
use crate::sweep::{CacheStats, ExecPolicy, SweepEngine};

/// QoE histogram range: Eq. (1) scores live in the MOS band `[0, 5]`.
const QOE_LO: f64 = 0.0;
/// Upper edge of the QoE histogram.
const QOE_HI: f64 = 5.0;
/// QoE histogram resolution (0.1-MOS bins).
const QOE_BINS: usize = 50;

/// Energy histogram range: a 10-minute 1080p session on a poor link
/// stays well under 3200 J with the Table VI power model; anything
/// above clamps into the top bin.
const ENERGY_LO: f64 = 0.0;
/// Upper edge of the energy histogram (joules).
const ENERGY_HI: f64 = 3200.0;
/// Energy histogram resolution (50-joule bins).
const ENERGY_BINS: usize = 64;

/// A fixed-range, fixed-width histogram with saturating edge bins.
///
/// The bounded-memory backbone of the fleet reducer: recording is O(1),
/// merging is element-wise `u64` addition (exact), and percentile tails
/// come from the cumulative counts via the shared `nearest_rank`
/// convention, reported at bin midpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// NaN samples, counted apart from the bins so they can be reported
    /// explicitly instead of silently polluting the lowest bin.
    #[serde(default)]
    nan: u64,
}

impl FixedHistogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            nan: 0,
        }
    }

    fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Records one value; out-of-range values clamp into the edge bins.
    /// NaN is counted in the explicit [`Self::nan_count`] tally — not a
    /// bin — so it still contributes to [`Self::total`] (keeping the
    /// `total == users` invariant) without invisibly skewing the lowest
    /// bin's percentile mass.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            self.nan += 1;
            return;
        }
        let raw = (value - self.lo) / self.bin_width();
        let idx = if raw < 0.0 {
            0
        } else {
            (raw as usize).min(self.counts.len() - 1)
        };
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot += 1;
        }
    }

    /// Total recorded count, NaN samples included.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.finite() + self.nan
    }

    /// Finite samples actually sitting in bins.
    fn finite(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// NaN samples recorded (excluded from every bin and percentile).
    #[must_use]
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// Adds `other`'s counts into `self` (exact).
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different shapes.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert!(
            self.counts.len() == other.counts.len()
                && self.lo.to_bits() == other.lo.to_bits()
                && self.hi.to_bits() == other.hi.to_bits(),
            "cannot merge differently-shaped histograms"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.nan += other.nan;
    }

    /// The `p`-quantile (0 ≤ p ≤ 1) of the **finite** samples under the
    /// workspace nearest-rank convention, reported as the midpoint of
    /// the bin holding the ranked sample. `None` when no finite sample
    /// was recorded — and `None` (never a silently saturated rank) in
    /// the degenerate case of a finite count that does not fit `usize`
    /// on a 32-bit target.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` (via `nearest_rank`).
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let finite = usize::try_from(self.finite()).ok()?;
        let rank = nearest_rank(finite, p)? as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(self.lo + (i as f64 + 0.5) * self.bin_width());
            }
        }
        None
    }
}

/// Sub-aggregate for one population class (a context, battery state or
/// signal tier): enough to report the class share and its mean QoE and
/// energy without per-session state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct ClassAgg {
    count: u64,
    qoe_sum: f64,
    energy_sum: f64,
}

impl ClassAgg {
    fn absorb(&mut self, qoe: f64, energy: f64) {
        self.count += 1;
        self.qoe_sum += qoe;
        self.energy_sum += energy;
    }

    fn merge(&mut self, other: &ClassAgg) {
        self.count += other.count;
        self.qoe_sum += other.qoe_sum;
        self.energy_sum += other.energy_sum;
    }

    fn report(&self, class: &str, fleet: u64) -> ClassReport {
        let n = self.count as f64;
        ClassReport {
            class: class.to_string(),
            share: if fleet == 0 {
                0.0
            } else {
                self.count as f64 / fleet as f64
            },
            mean_qoe: if self.count == 0 { 0.0 } else { self.qoe_sum / n },
            mean_energy_j: if self.count == 0 {
                0.0
            } else {
                self.energy_sum / n
            },
        }
    }
}

/// The streaming fleet aggregator: absorbs one `(user, result)` pair at
/// a time and keeps only O(1) state — counters, sums, fixed-bin
/// histograms, per-class sub-aggregates and the arrivals profile.
///
/// Reducers built over disjoint user ranges can be combined with
/// [`FleetReducer::merge`] (exact for all integer state; floating-point
/// sums combine up to f64 rounding).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReducer {
    users: u64,
    segments: u64,
    switches: u64,
    retries: u64,
    aborts: u64,
    degraded: u64,
    stalled_sessions: u64,
    qoe_sum: f64,
    energy_sum: f64,
    screen_sum: f64,
    decode_sum: f64,
    radio_sum: f64,
    tail_sum: f64,
    rebuffer_sum: f64,
    wall_sum: f64,
    played_sum: f64,
    downloaded: MegaBytes,
    arrivals: [u64; 24],
    by_context: [ClassAgg; 4],
    by_battery: [ClassAgg; 3],
    by_signal: [ClassAgg; 3],
    qoe_hist: FixedHistogram,
    energy_hist: FixedHistogram,
}

impl Default for FleetReducer {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetReducer {
    /// An empty reducer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            users: 0,
            segments: 0,
            switches: 0,
            retries: 0,
            aborts: 0,
            degraded: 0,
            stalled_sessions: 0,
            qoe_sum: 0.0,
            energy_sum: 0.0,
            screen_sum: 0.0,
            decode_sum: 0.0,
            radio_sum: 0.0,
            tail_sum: 0.0,
            rebuffer_sum: 0.0,
            wall_sum: 0.0,
            played_sum: 0.0,
            downloaded: MegaBytes::default(),
            arrivals: [0; 24],
            by_context: [ClassAgg::default(); 4],
            by_battery: [ClassAgg::default(); 3],
            by_signal: [ClassAgg::default(); 3],
            qoe_hist: FixedHistogram::new(QOE_LO, QOE_HI, QOE_BINS),
            energy_hist: FixedHistogram::new(ENERGY_LO, ENERGY_HI, ENERGY_BINS),
        }
    }

    /// Number of sessions absorbed so far.
    #[must_use]
    pub fn users(&self) -> u64 {
        self.users
    }

    /// Folds one simulated session into the aggregate.
    pub fn absorb(&mut self, user: &UserSpec, result: &SessionResult) {
        let qoe = result.mean_qoe.value();
        let energy = result.total_energy().value();

        self.users += 1;
        self.segments += result.tasks.len() as u64;
        self.switches += result.switches as u64;
        self.retries += result.retries as u64;
        self.aborts += result.aborts as u64;
        self.degraded += result.degraded_segments as u64;
        if result.total_rebuffer.value() > 0.0 {
            self.stalled_sessions += 1;
        }
        self.qoe_sum += qoe;
        self.energy_sum += energy;
        self.screen_sum += result.energy.screen.value();
        self.decode_sum += result.energy.decode.value();
        self.radio_sum += result.energy.radio.value();
        self.tail_sum += result.energy.tail.value();
        self.rebuffer_sum += result.total_rebuffer.value();
        self.wall_sum += result.wall_time.value();
        self.played_sum += result.played.value();
        self.downloaded += result.downloaded;

        let hour = (user.hour as usize).min(23);
        if let Some(slot) = self.arrivals.get_mut(hour) {
            *slot += 1;
        }
        let ctx = match user.context {
            FleetContext::Static => 0,
            FleetContext::Walking => 1,
            FleetContext::Vehicle => 2,
            FleetContext::Commute => 3,
        };
        if let Some(agg) = self.by_context.get_mut(ctx) {
            agg.absorb(qoe, energy);
        }
        let bat = match user.battery {
            BatteryState::Charged => 0,
            BatteryState::Normal => 1,
            BatteryState::Low => 2,
        };
        if let Some(agg) = self.by_battery.get_mut(bat) {
            agg.absorb(qoe, energy);
        }
        let sig = match user.signal {
            SignalTier::Good => 0,
            SignalTier::Fair => 1,
            SignalTier::Poor => 2,
        };
        if let Some(agg) = self.by_signal.get_mut(sig) {
            agg.absorb(qoe, energy);
        }
        self.qoe_hist.record(qoe);
        self.energy_hist.record(energy);
    }

    /// Combines `other` (built over a disjoint user range) into `self`.
    /// Counters and histograms add exactly; floating-point sums add with
    /// the usual f64 rounding.
    pub fn merge(&mut self, other: &FleetReducer) {
        self.users += other.users;
        self.segments += other.segments;
        self.switches += other.switches;
        self.retries += other.retries;
        self.aborts += other.aborts;
        self.degraded += other.degraded;
        self.stalled_sessions += other.stalled_sessions;
        self.qoe_sum += other.qoe_sum;
        self.energy_sum += other.energy_sum;
        self.screen_sum += other.screen_sum;
        self.decode_sum += other.decode_sum;
        self.radio_sum += other.radio_sum;
        self.tail_sum += other.tail_sum;
        self.rebuffer_sum += other.rebuffer_sum;
        self.wall_sum += other.wall_sum;
        self.played_sum += other.played_sum;
        self.downloaded += other.downloaded;
        for (a, b) in self.arrivals.iter_mut().zip(&other.arrivals) {
            *a += b;
        }
        for (a, b) in self.by_context.iter_mut().zip(&other.by_context) {
            a.merge(b);
        }
        for (a, b) in self.by_battery.iter_mut().zip(&other.by_battery) {
            a.merge(b);
        }
        for (a, b) in self.by_signal.iter_mut().zip(&other.by_signal) {
            a.merge(b);
        }
        self.qoe_hist.merge(&other.qoe_hist);
        self.energy_hist.merge(&other.energy_hist);
    }

    /// Freezes the aggregate into a serializable report.
    #[must_use]
    pub fn finalize(&self) -> FleetReport {
        let n = self.users as f64;
        let mean = |sum: f64| if self.users == 0 { 0.0 } else { sum / n };
        let tail = |h: &FixedHistogram| Tail {
            p50: h.percentile(0.50).unwrap_or(0.0),
            p90: h.percentile(0.90).unwrap_or(0.0),
            p99: h.percentile(0.99).unwrap_or(0.0),
        };
        FleetReport {
            users: self.users,
            segments: self.segments,
            switches: self.switches,
            retries: self.retries,
            aborts: self.aborts,
            degraded_segments: self.degraded,
            stalled_sessions: self.stalled_sessions,
            mean_qoe: mean(self.qoe_sum),
            mean_energy_j: mean(self.energy_sum),
            energy_per_gb_j: if self.downloaded.value() > 0.0 {
                self.energy_sum / (self.downloaded.value() / 1000.0)
            } else {
                0.0
            },
            energy_screen_j: self.screen_sum,
            energy_decode_j: self.decode_sum,
            energy_radio_j: self.radio_sum,
            energy_tail_j: self.tail_sum,
            rebuffer_ratio: if self.wall_sum > 0.0 {
                self.rebuffer_sum / self.wall_sum
            } else {
                0.0
            },
            stalled_share: mean(self.stalled_sessions as f64),
            degraded_share: if self.segments == 0 {
                0.0
            } else {
                self.degraded as f64 / self.segments as f64
            },
            played_s: self.played_sum,
            downloaded_mb: self.downloaded,
            qoe_tail: tail(&self.qoe_hist),
            energy_tail: tail(&self.energy_hist),
            qoe_nan: self.qoe_hist.nan_count(),
            energy_nan: self.energy_hist.nan_count(),
            arrivals_by_hour: self.arrivals.to_vec(),
            by_context: FleetContext::all()
                .iter()
                .zip(&self.by_context)
                .map(|(c, agg)| agg.report(&c.to_string(), self.users))
                .collect(),
            by_battery: BatteryState::all()
                .iter()
                .zip(&self.by_battery)
                .map(|(b, agg)| agg.report(&b.to_string(), self.users))
                .collect(),
            by_signal: SignalTier::all()
                .iter()
                .zip(&self.by_signal)
                .map(|(s, agg)| agg.report(&s.to_string(), self.users))
                .collect(),
        }
    }
}

/// Percentile tails of a fleet distribution (nearest-rank-from-below at
/// histogram-bin resolution).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tail {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Per-class slice of the fleet (one context, battery state or signal
/// tier).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// Class label (e.g. `"commute"`, `"low"`, `"poor"`).
    pub class: String,
    /// Fraction of the fleet in this class.
    pub share: f64,
    /// Mean session QoE of the class.
    pub mean_qoe: f64,
    /// Mean session energy of the class (joules).
    pub mean_energy_j: f64,
}

/// The aggregate outcome of a fleet run: everything the deployment
/// claim needs, nothing per-session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Sessions simulated.
    pub users: u64,
    /// Segments downloaded across the fleet.
    pub segments: u64,
    /// Bitrate switches across the fleet.
    pub switches: u64,
    /// Faulted-download retries across the fleet.
    pub retries: u64,
    /// Aborted download attempts across the fleet.
    pub aborts: u64,
    /// Segments served degraded after exhausting retries.
    pub degraded_segments: u64,
    /// Sessions that stalled at least once.
    pub stalled_sessions: u64,
    /// Fleet mean of per-session mean QoE.
    pub mean_qoe: f64,
    /// Fleet mean session energy (joules).
    pub mean_energy_j: f64,
    /// Total energy per gigabyte delivered (J/GB).
    pub energy_per_gb_j: f64,
    /// Total screen energy (joules).
    pub energy_screen_j: f64,
    /// Total decode energy (joules).
    pub energy_decode_j: f64,
    /// Total radio transfer energy (joules).
    pub energy_radio_j: f64,
    /// Total radio tail energy (joules).
    pub energy_tail_j: f64,
    /// Fleet stall time over fleet wall time.
    pub rebuffer_ratio: f64,
    /// Fraction of sessions that stalled at least once.
    pub stalled_share: f64,
    /// Fraction of segments served degraded.
    pub degraded_share: f64,
    /// Seconds of video played across the fleet.
    pub played_s: f64,
    /// Megabytes delivered across the fleet.
    pub downloaded_mb: MegaBytes,
    /// QoE distribution tails.
    pub qoe_tail: Tail,
    /// Session-energy distribution tails (joules).
    pub energy_tail: Tail,
    /// Sessions whose QoE came back NaN (excluded from the QoE tails;
    /// nonzero means a model bug upstream, so the report says so).
    #[serde(default)]
    pub qoe_nan: u64,
    /// Sessions whose energy came back NaN (excluded from the energy
    /// tails).
    #[serde(default)]
    pub energy_nan: u64,
    /// Session arrivals per local hour (24 entries).
    pub arrivals_by_hour: Vec<u64>,
    /// Slices by watching context.
    pub by_context: Vec<ClassReport>,
    /// Slices by battery state.
    pub by_battery: Vec<ClassReport>,
    /// Slices by signal tier.
    pub by_signal: Vec<ClassReport>,
}

impl FleetReport {
    /// Renders the report as stable plain text. Contains no timing,
    /// policy or host information, so two runs of the same fleet under
    /// any execution policy print byte-identical text — CI diffs it.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // ecas-lint: allow(panic-safety, reason = "writing to a String cannot fail")
        let mut w = |line: String| writeln!(out, "{line}").expect("String write cannot fail");
        w(format!("fleet users={}", self.users));
        w(format!(
            "sessions segments={} switches={} retries={} aborts={} degraded={} stalled={}",
            self.segments,
            self.switches,
            self.retries,
            self.aborts,
            self.degraded_segments,
            self.stalled_sessions
        ));
        w(format!(
            "qoe mean={:.6} p50={:.3} p90={:.3} p99={:.3} nan={}",
            self.mean_qoe, self.qoe_tail.p50, self.qoe_tail.p90, self.qoe_tail.p99, self.qoe_nan
        ));
        w(format!(
            "energy mean_j={:.6} p50_j={:.1} p90_j={:.1} p99_j={:.1} per_gb_j={:.3} nan={}",
            self.mean_energy_j,
            self.energy_tail.p50,
            self.energy_tail.p90,
            self.energy_tail.p99,
            self.energy_per_gb_j,
            self.energy_nan
        ));
        w(format!(
            "energy_split screen_j={:.3} decode_j={:.3} radio_j={:.3} tail_j={:.3}",
            self.energy_screen_j, self.energy_decode_j, self.energy_radio_j, self.energy_tail_j
        ));
        w(format!(
            "playback rebuffer_ratio={:.6} stalled_share={:.6} degraded_share={:.6} played_s={:.1} downloaded_mb={:.3}",
            self.rebuffer_ratio,
            self.stalled_share,
            self.degraded_share,
            self.played_s,
            self.downloaded_mb.value()
        ));
        let hours: Vec<String> = self.arrivals_by_hour.iter().map(u64::to_string).collect();
        w(format!("arrivals_by_hour {}", hours.join(",")));
        let groups = [
            ("context", &self.by_context),
            ("battery", &self.by_battery),
            ("signal", &self.by_signal),
        ];
        for (title, classes) in groups {
            for c in classes.iter() {
                w(format!(
                    "{title}/{} share={:.6} mean_qoe={:.6} mean_energy_j={:.6}",
                    c.class, c.share, c.mean_qoe, c.mean_energy_j
                ));
            }
        }
        out
    }
}

/// The fleet population engine: streams a [`PopulationSpec`] through a
/// [`SweepEngine`] in bounded-memory batches and reduces on the fly.
///
/// # Examples
///
/// ```
/// use ecas_core::fleet::FleetEngine;
/// use ecas_core::sweep::ExecPolicy;
/// use ecas_core::trace::population::PopulationSpec;
/// use ecas_core::types::units::Seconds;
///
/// let spec = PopulationSpec::new(8, 7).mean_duration(Seconds::new(20.0));
/// let engine = FleetEngine::paper().batch_size(4);
/// let seq = engine.run(&spec, &ExecPolicy::Sequential);
/// let par = engine.run(&spec, &ExecPolicy::parallel());
/// assert_eq!(seq.users, 8);
/// // The aggregate is execution-policy independent, byte for byte.
/// assert_eq!(seq.render(), par.render());
/// ```
pub struct FleetEngine {
    sweep: SweepEngine,
    approach: Approach,
    batch: usize,
    registry: Option<Arc<MetricsRegistry>>,
}

impl FleetEngine {
    /// Default batch size: large enough to keep every worker of a wide
    /// pool busy, small enough that a batch of short sessions stays in
    /// the tens of megabytes.
    pub const DEFAULT_BATCH: usize = 2048;

    /// Creates an engine around a configured runner, evaluating the
    /// paper's controller ([`Approach::Ours`]).
    #[must_use]
    pub fn new(runner: ExperimentRunner) -> Self {
        Self {
            sweep: SweepEngine::new(runner),
            approach: Approach::Ours,
            batch: Self::DEFAULT_BATCH,
            registry: None,
        }
    }

    /// An engine over the paper's simulator configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(ExperimentRunner::paper())
    }

    /// Evaluates `approach` instead of the default [`Approach::Ours`].
    #[must_use]
    pub fn approach(mut self, approach: Approach) -> Self {
        self.approach = approach;
        self
    }

    /// Overrides the batch size (the memory bound of a fleet run).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn batch_size(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        self.batch = batch;
        self
    }

    /// Mirrors fleet progress (`fleet/*` names) and the sweep's cache
    /// counters into `registry`.
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.sweep = self.sweep.with_registry(Arc::clone(&registry));
        self.registry = Some(registry);
        self
    }

    /// Cache activity of the underlying sweep engine (all zeros unless
    /// the policy caches).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.sweep.stats()
    }

    /// Runs the whole fleet under `policy` and returns the aggregate.
    ///
    /// Memory: one [`SessionBatch`] of `batch_size` synthesized sessions
    /// plus that batch's results — never the fleet. The fold order is
    /// the global user order for every policy and batch size, so the
    /// report (and its [`FleetReport::render`] text) is byte-identical
    /// across `Sequential` / `Parallel { jobs }` and across batch-size
    /// choices.
    #[must_use]
    pub fn run(&self, spec: &PopulationSpec, policy: &ExecPolicy) -> FleetReport {
        let watch = self.registry.as_ref().map(|_| perf::Stopwatch::start());
        let mut reducer = FleetReducer::new();
        let mut batch = SessionBatch::with_capacity(self.batch.min(spec.users() as usize));
        let approaches = [self.approach];
        let mut start = 0u64;
        while start < spec.users() {
            batch.refill(spec, start, self.batch);
            let results = self.sweep.run_grid(batch.sessions(), &approaches, policy);
            for (user, result) in batch.specs().iter().zip(&results) {
                reducer.absorb(user, result);
            }
            start += batch.len() as u64;
            if let Some(registry) = &self.registry {
                registry.add(names::FLEET_USERS, batch.len() as u64);
                registry.add(names::FLEET_BATCHES, 1);
            }
        }
        if let (Some(watch), Some(registry)) = (watch, &self.registry) {
            registry.record_span(names::FLEET_EXECUTE_SPAN, watch.elapsed_nanos());
        }
        reducer.finalize()
    }
}

#[cfg(test)]
// Tests assert exact aggregate equality on purpose; clippy::float_cmp
// guards library code.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use ecas_types::units::Seconds;

    fn tiny_spec(users: u64) -> PopulationSpec {
        PopulationSpec::new(users, 0xF1EE7).mean_duration(Seconds::new(20.0))
    }

    #[test]
    fn histogram_percentiles_follow_nearest_rank() {
        let mut h = FixedHistogram::new(0.0, 10.0, 10);
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        // nearest_rank(4, 0.25) = floor(0.25 * 3) = 0 → the 1.0 sample,
        // reported at its bin midpoint 1.5.
        assert_eq!(h.percentile(0.25), Some(1.5));
        assert_eq!(h.percentile(1.0), Some(4.5));
        assert_eq!(FixedHistogram::new(0.0, 1.0, 4).percentile(0.5), None);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = FixedHistogram::new(0.0, 10.0, 10);
        h.record(-5.0);
        h.record(1e9);
        h.record(f64::NAN);
        assert_eq!(h.total(), 3);
        assert_eq!(h.percentile(1.0), Some(9.5));
    }

    #[test]
    fn histogram_counts_nan_explicitly_not_in_a_bin() {
        let mut h = FixedHistogram::new(0.0, 10.0, 10);
        h.record(f64::NAN);
        h.record(f64::NAN);
        h.record(9.0);
        assert_eq!(h.nan_count(), 2);
        assert_eq!(h.total(), 3, "NaN still counts toward the total");
        // Percentiles run over the finite sample alone: the single 9.0
        // is every quantile. Under the old lowest-bin folding, p50 of
        // this input came out as 0.5 — a silent lie.
        assert_eq!(h.percentile(0.5), Some(9.5));
        assert_eq!(h.percentile(0.0), Some(9.5));

        let mut only_nan = FixedHistogram::new(0.0, 1.0, 4);
        only_nan.record(f64::NAN);
        assert_eq!(only_nan.percentile(0.5), None, "no finite sample, no rank");

        // Merge carries the tally; old serialized shapes (no `nan`
        // field) still deserialize.
        let mut other = FixedHistogram::new(0.0, 10.0, 10);
        other.record(f64::NAN);
        h.merge(&other);
        assert_eq!(h.nan_count(), 3);
        let legacy: FixedHistogram =
            serde_json::from_str(r#"{"lo":0.0,"hi":10.0,"counts":[1,0,0,0,0,0,0,0,0,0]}"#)
                .unwrap();
        assert_eq!(legacy.nan_count(), 0);
        assert_eq!(legacy.total(), 1);
    }

    #[test]
    fn nan_sessions_surface_in_the_fleet_report() {
        // The unit types reject NaN at construction, so a healthy run
        // reports zero — and the render must say so explicitly rather
        // than hide the tally.
        let spec = tiny_spec(3);
        let mut report = FleetEngine::paper().batch_size(3).run(&spec, &ExecPolicy::Sequential);
        assert_eq!(report.qoe_nan, 0);
        assert_eq!(report.energy_nan, 0);
        assert!(report.render().contains("p99=") && report.render().contains(" nan=0"));
        // If a NaN ever slips through (a model bug), the report calls
        // it out on the affected line.
        report.qoe_nan = 1;
        let text = report.render();
        let qoe_line = text.lines().find(|l| l.starts_with("qoe ")).unwrap();
        assert!(qoe_line.ends_with("nan=1"), "{qoe_line}");
        let energy_line = text.lines().find(|l| l.starts_with("energy ")).unwrap();
        assert!(energy_line.ends_with("nan=0"), "{energy_line}");
    }

    #[test]
    fn reducer_merge_matches_single_pass_on_integer_state() {
        let spec = tiny_spec(6);
        let engine = FleetEngine::paper().batch_size(6);
        // Build session results once via the engine's own sweep path.
        let mut batch = SessionBatch::with_capacity(6);
        batch.refill(&spec, 0, 6);
        let results = SweepEngine::new(ExperimentRunner::paper()).run_grid(
            batch.sessions(),
            &[Approach::Ours],
            &ExecPolicy::Sequential,
        );

        let mut single = FleetReducer::new();
        for (u, r) in batch.specs().iter().zip(&results) {
            single.absorb(u, r);
        }
        let mut left = FleetReducer::new();
        let mut right = FleetReducer::new();
        for (i, (u, r)) in batch.specs().iter().zip(&results).enumerate() {
            if i < 3 {
                left.absorb(u, r);
            } else {
                right.absorb(u, r);
            }
        }
        left.merge(&right);

        let a = single.finalize();
        let b = left.finalize();
        assert_eq!(a.users, b.users);
        assert_eq!(a.segments, b.segments);
        assert_eq!(a.arrivals_by_hour, b.arrivals_by_hour);
        assert_eq!(a.qoe_tail, b.qoe_tail, "histograms merge exactly");
        assert_eq!(a.energy_tail, b.energy_tail);
        // Floating-point sums agree up to round-off.
        assert!((a.mean_qoe - b.mean_qoe).abs() < 1e-9);
        assert!((a.mean_energy_j - b.mean_energy_j).abs() < 1e-6);
        // Engine smoke: the full run agrees with the hand fold exactly
        // (same order, same batches).
        let via_engine = engine.run(&spec, &ExecPolicy::Sequential);
        assert_eq!(via_engine, a);
    }

    #[test]
    fn aggregate_is_policy_and_batch_invariant() {
        let spec = tiny_spec(10);
        let seq = FleetEngine::paper().batch_size(4).run(&spec, &ExecPolicy::Sequential);
        let par = FleetEngine::paper()
            .batch_size(4)
            .run(&spec, &ExecPolicy::Parallel { jobs: 3 });
        assert_eq!(seq, par, "parallel aggregates must equal sequential");
        assert_eq!(seq.render(), par.render());
        let other_batch = FleetEngine::paper().batch_size(7).run(&spec, &ExecPolicy::Sequential);
        assert_eq!(seq, other_batch, "batch size must not leak into the aggregate");
    }

    #[test]
    fn report_is_populated_and_consistent() {
        let spec = tiny_spec(12);
        let report = FleetEngine::paper().batch_size(5).run(&spec, &ExecPolicy::parallel());
        assert_eq!(report.users, 12);
        assert!(report.segments > 0);
        assert!(report.mean_qoe > 0.0);
        assert!(report.mean_energy_j > 0.0);
        assert!(report.energy_per_gb_j > 0.0);
        assert!(report.played_s > 0.0);
        let arrivals: u64 = report.arrivals_by_hour.iter().sum();
        assert_eq!(arrivals, 12);
        for classes in [&report.by_context, &report.by_battery, &report.by_signal] {
            let share: f64 = classes.iter().map(|c| c.share).sum();
            assert!((share - 1.0).abs() < 1e-9, "class shares sum to 1");
        }
        let text = report.render();
        assert!(text.contains("fleet users=12"));
        assert!(text.contains("arrivals_by_hour"));
        // Round-trips through JSON.
        let json = serde_json::to_string(&report).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
