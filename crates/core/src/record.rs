//! Recorded sessions: the `.ecasr` artifact tying a scenario, its event
//! log and its reference result together.
//!
//! PR 5's replay oracle proved a [`SessionResult`] is fully
//! reconstructible from its [`EventLog`]; this module makes that fact
//! portable. A [`SessionRecord`] captures everything needed to reproduce
//! and check a session *from a file alone*:
//!
//! * the [`RecordScenario`] — which trace to regenerate
//!   ([`RecordedSession`]), the approach, η, and the optional fault spec;
//! * the content hash of the regenerated trace and the bitrate ladder,
//!   so a stale generator or ladder is detected before replay;
//! * the simulator's [`EventLog`] (the replay input) and the reference
//!   [`SessionResult`] (the replay expectation).
//!
//! The on-disk form is the versioned `ECASR` container of
//! [`ecas_trace::record`]: scenario header as canonical JSON in section
//! 1, the event log and result in the compact `ecas-sim`
//! [`codec`](ecas_sim::codec) in sections 2 and 3. Records carry no
//! timestamps or host details, so re-recording a scenario reproduces the
//! committed artifact byte for byte — the property the golden corpus
//! under `golden/` pins in CI (see `scripts/golden.sh` and DESIGN.md
//! § 13).
//!
//! # Examples
//!
//! ```
//! use ecas_core::record::{RecordScenario, RecordedSession, SessionRecord};
//! use ecas_core::{Approach, ReplayVerdict};
//!
//! let scenario = RecordScenario {
//!     session: RecordedSession::Synthetic {
//!         context: ecas_core::trace::Context::Walking,
//!         seconds: 30.0,
//!         seed: 7,
//!     },
//!     approach: Approach::Ours,
//!     eta: 0.5,
//!     fault: None,
//! };
//! let record = SessionRecord::record(scenario).unwrap();
//! let bytes = record.to_bytes().unwrap();
//! let back = SessionRecord::from_bytes(&bytes).unwrap();
//! assert!(matches!(back.verify().unwrap(), ReplayVerdict::Pass { .. }));
//! ```

use std::fmt;
use std::fs;
use std::path::Path;

use ecas_obs::{names, stable_hash, Probe, NULL_PROBE};
use ecas_sim::codec;
use ecas_sim::{EventLog, FaultSpec, SessionResult, Simulator};
use ecas_trace::population::PopulationSpec;
use ecas_trace::record::{RecordContainer, RecordError};
use ecas_trace::synth::context::{Context, ContextSchedule};
use ecas_trace::synth::SessionGenerator;
use ecas_trace::videos::EvalTraceSpec;
use ecas_trace::SessionTrace;
use ecas_types::ladder::BitrateLadder;
use ecas_types::units::Seconds;
use serde::{Deserialize, Serialize};

use crate::approach::Approach;
use crate::oracle::{Oracle, ReplayError, ReplayVerdict};
use crate::runner::ExperimentRunner;

/// Section tag of the scenario header (canonical JSON).
pub const SECTION_SCENARIO: u8 = 1;
/// Section tag of the event log (`ecas_sim::codec::encode_log`).
// ecas-lint: allow(pub-surface, reason = "wire-format contract documented in DESIGN.md section 13")
pub const SECTION_EVENT_LOG: u8 = 2;
/// Section tag of the reference result
/// (`ecas_sim::codec::encode_result`).
// ecas-lint: allow(pub-surface, reason = "wire-format contract documented in DESIGN.md section 13")
pub const SECTION_RESULT: u8 = 3;

/// Error produced while assembling, parsing or replaying a session
/// record.
#[derive(Debug)]
pub enum SessionRecordError {
    /// The container or a section payload was malformed.
    Codec(RecordError),
    /// The scenario header describes a session this build cannot
    /// regenerate (unknown Table V id, non-positive duration, …).
    Scenario(String),
    /// The regenerated trace does not hash to the recorded value — the
    /// trace generators drifted since the record was written.
    TraceHashMismatch {
        /// Hash stored in the record.
        stored: u64,
        /// Hash of the freshly regenerated trace.
        computed: u64,
    },
    /// The stored event log could not be reconstructed into a result.
    Replay(ReplayError),
}

impl fmt::Display for SessionRecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionRecordError::Codec(e) => write!(f, "{e}"),
            SessionRecordError::Scenario(msg) => write!(f, "unreproducible scenario: {msg}"),
            SessionRecordError::TraceHashMismatch { stored, computed } => write!(
                f,
                "regenerated trace hashes to {computed:#018x} but the record was written \
                 against {stored:#018x}; the synthetic generators have drifted"
            ),
            SessionRecordError::Replay(e) => write!(f, "stored log does not replay: {e}"),
        }
    }
}

impl std::error::Error for SessionRecordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionRecordError::Codec(e) => Some(e),
            SessionRecordError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RecordError> for SessionRecordError {
    fn from(e: RecordError) -> Self {
        SessionRecordError::Codec(e)
    }
}

impl From<ReplayError> for SessionRecordError {
    fn from(e: ReplayError) -> Self {
        SessionRecordError::Replay(e)
    }
}

/// The trace side of a recorded scenario — every variant regenerates a
/// [`SessionTrace`] deterministically from parameters alone, so records
/// never embed the (large) trace itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecordedSession {
    /// One of the five Table V evaluation traces (`id` is 1-based, as in
    /// the paper).
    TableV {
        /// The Table V row (1–5).
        id: u8,
    },
    /// A synthetic single-context session.
    Synthetic {
        /// The viewing context.
        context: Context,
        /// Session duration in seconds.
        seconds: f64,
        /// Generator seed.
        seed: u64,
    },
    /// A synthetic commute session (the three-phase schedule of
    /// [`ContextSchedule::commute`]).
    Commute {
        /// Session duration in seconds.
        seconds: f64,
        /// Generator seed.
        seed: u64,
    },
    /// One user's session out of a PR 8 fleet population — the record
    /// corpus bridge between the fleet and record layers. Regenerates
    /// via [`PopulationSpec::user`] under the default mix and diurnal
    /// profile, which is pure in `(seed, mean_duration_s, index)` (the
    /// fleet size only bounds the index), so the trace is reproducible
    /// from these four numbers alone.
    Fleet {
        /// Fleet size the record was cut from (bounds `index`).
        users: u64,
        /// The fleet seed.
        seed: u64,
        /// The user's position in the fleet (0-based).
        index: u64,
        /// Nominal (pre-battery-scaling) session duration in seconds.
        mean_duration_s: f64,
    },
}

impl RecordedSession {
    /// A short, filesystem-friendly label ("tablev3",
    /// "walking-60s-seed7", …).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            RecordedSession::TableV { id } => format!("tablev{id}"),
            RecordedSession::Synthetic {
                context,
                seconds,
                seed,
            } => {
                let ctx = match context {
                    Context::QuietRoom => "quietroom",
                    Context::Walking => "walking",
                    Context::MovingVehicle => "vehicle",
                };
                format!("{ctx}-{seconds:.0}s-seed{seed}")
            }
            RecordedSession::Commute { seconds, seed } => {
                format!("commute-{seconds:.0}s-seed{seed}")
            }
            RecordedSession::Fleet {
                seed,
                index,
                mean_duration_s,
                ..
            } => format!("fleet{seed}-{mean_duration_s:.0}s-u{index}"),
        }
    }

    /// Regenerates the session trace from the stored parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SessionRecordError::Scenario`] when the parameters are
    /// out of range (unknown Table V id, non-positive or non-finite
    /// duration).
    pub fn generate(&self) -> Result<SessionTrace, SessionRecordError> {
        match self {
            RecordedSession::TableV { id } => {
                let specs = EvalTraceSpec::table_v();
                let index = usize::from(*id)
                    .checked_sub(1)
                    .filter(|i| *i < specs.len())
                    .ok_or_else(|| {
                        SessionRecordError::Scenario(format!(
                            "table v trace id {id} is out of range 1..={}",
                            specs.len()
                        ))
                    })?;
                specs
                    .get(index)
                    .map(EvalTraceSpec::generate)
                    .ok_or_else(|| {
                        SessionRecordError::Scenario(format!("table v index {index} vanished"))
                    })
            }
            RecordedSession::Synthetic {
                context,
                seconds,
                seed,
            } => {
                let duration = checked_duration(*seconds)?;
                Ok(SessionGenerator::new(
                    self.label(),
                    ContextSchedule::constant(*context),
                    duration,
                    *seed,
                )
                .generate())
            }
            RecordedSession::Commute { seconds, seed } => {
                let duration = checked_duration(*seconds)?;
                Ok(SessionGenerator::new(
                    self.label(),
                    ContextSchedule::commute(duration),
                    duration,
                    *seed,
                )
                .generate())
            }
            RecordedSession::Fleet {
                users,
                seed,
                index,
                mean_duration_s,
            } => {
                if *index >= *users {
                    return Err(SessionRecordError::Scenario(format!(
                        "fleet user index {index} is out of range for {users} users"
                    )));
                }
                let mean = checked_duration(*mean_duration_s)?;
                let spec = PopulationSpec::new(*users, *seed).mean_duration(mean);
                Ok(spec.user(*index).synthesize())
            }
        }
    }
}

fn checked_duration(seconds: f64) -> Result<Seconds, SessionRecordError> {
    if !seconds.is_finite() || seconds < 4.0 {
        return Err(SessionRecordError::Scenario(format!(
            "session duration {seconds} s is not a finite value >= 4 s (two segments)"
        )));
    }
    Seconds::try_new(seconds).map_err(|e| SessionRecordError::Scenario(e.to_string()))
}

/// Everything needed to re-run a recorded session: the trace recipe, the
/// approach, η, and the optional fault spec. Serialized as canonical
/// JSON into the record's scenario header.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordScenario {
    /// The trace recipe.
    pub session: RecordedSession,
    /// The approach under test.
    pub approach: Approach,
    /// The Eq. (11) energy/QoE weighting factor.
    pub eta: f64,
    /// Fault injection, if any.
    pub fault: Option<FaultSpec>,
}

impl RecordScenario {
    /// The runner this scenario executes under — always the paper
    /// simulator (14-level evaluation ladder) plus this scenario's η and
    /// fault spec, mirroring [`crate::report::Scenario::runner`].
    #[must_use]
    pub fn runner(&self) -> ExperimentRunner {
        let mut simulator = Simulator::paper(BitrateLadder::evaluation());
        if let Some(fault) = self.fault {
            simulator = simulator.with_faults(fault);
        }
        ExperimentRunner::new(simulator, self.eta)
    }

    /// A short label: `<session>-<approach>[-fault]`.
    #[must_use]
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}-{}",
            self.session.label(),
            self.approach.label().to_ascii_lowercase()
        );
        if self.fault.is_some_and(|f| f.is_active()) {
            label.push_str("-fault");
        }
        label
    }
}

/// The scenario header serialized into [`SECTION_SCENARIO`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Header {
    /// Workspace version that wrote the record (informational only —
    /// not compared on replay; the trace hash is the real gate).
    crate_version: String,
    scenario: RecordScenario,
    trace_hash: u64,
    ladder_mbps: Vec<f64>,
}

/// A fully materialized session record: scenario + event log +
/// reference result.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// The scenario that produced (and reproduces) this session.
    pub scenario: RecordScenario,
    /// Workspace version that wrote the record.
    pub crate_version: String,
    /// [`stable_hash`] of the regenerated [`SessionTrace`].
    pub trace_hash: u64,
    /// The bitrate ladder, in Mbps, the session ran against.
    pub ladder_mbps: Vec<f64>,
    /// The recorded event log — the replay input.
    pub log: EventLog,
    /// The simulator's result — the replay expectation.
    pub reference: SessionResult,
}

impl SessionRecord {
    /// Runs `scenario` and captures the session as a record.
    ///
    /// # Errors
    ///
    /// Returns [`SessionRecordError::Scenario`] when the scenario cannot
    /// be regenerated.
    pub fn record(scenario: RecordScenario) -> Result<Self, SessionRecordError> {
        Self::record_with_probe(scenario, &NULL_PROBE)
    }

    /// [`Self::record`], emitting one `record/recorded` counter into
    /// `probe` (plus the runner's usual instrumentation).
    ///
    /// # Errors
    ///
    /// See [`Self::record`].
    pub fn record_with_probe(
        scenario: RecordScenario,
        probe: &dyn Probe,
    ) -> Result<Self, SessionRecordError> {
        let trace = scenario.session.generate()?;
        let runner = scenario.runner();
        let (reference, log) = runner.run_with_probe(&trace, &scenario.approach, probe);
        let ladder = runner.simulator().ladder();
        let ladder_mbps = ladder
            .levels()
            .map(|level| ladder.bitrate(level).value())
            .collect();
        probe.add(names::RECORD_RECORDED, 1);
        Ok(Self {
            scenario,
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            trace_hash: stable_hash(&trace),
            ladder_mbps,
            log,
            reference,
        })
    }

    /// Serializes the record into the versioned `ECASR` container.
    ///
    /// Deterministic: equal records encode to equal bytes, which is what
    /// lets CI re-record a golden fixture and `cmp` it against the
    /// committed artifact.
    ///
    /// # Errors
    ///
    /// Returns [`SessionRecordError::Codec`] when the header cannot be
    /// serialized (not expected for well-formed scenarios).
    pub fn to_bytes(&self) -> Result<Vec<u8>, SessionRecordError> {
        let header = Header {
            crate_version: self.crate_version.clone(),
            scenario: self.scenario.clone(),
            trace_hash: self.trace_hash,
            ladder_mbps: self.ladder_mbps.clone(),
        };
        let header_json = serde_json::to_string(&header)
            .map_err(|e| RecordError::Corrupt(format!("scenario header: {e}")))?;
        let mut container = RecordContainer::new();
        container.push(SECTION_SCENARIO, header_json.into_bytes());
        container.push(SECTION_EVENT_LOG, codec::encode_log(&self.log));
        container.push(SECTION_RESULT, codec::encode_result(&self.reference));
        Ok(container.encode())
    }

    /// Parses a record from its container bytes, validating magic,
    /// version and content hash before any section is touched.
    ///
    /// # Errors
    ///
    /// Returns [`SessionRecordError::Codec`] for every malformed-bytes
    /// failure mode (typed per [`RecordError`]).
    pub fn from_bytes(data: &[u8]) -> Result<Self, SessionRecordError> {
        let container = RecordContainer::decode(data)?;
        let header_bytes = container.require(SECTION_SCENARIO)?;
        let header_str = std::str::from_utf8(header_bytes)
            .map_err(|e| RecordError::Corrupt(format!("scenario header: {e}")))?;
        let header: Header = serde_json::from_str(header_str)
            .map_err(|e| RecordError::Corrupt(format!("scenario header: {e}")))?;
        let log = codec::decode_log(container.require(SECTION_EVENT_LOG)?)?;
        let reference = codec::decode_result(container.require(SECTION_RESULT)?)?;
        Ok(Self {
            scenario: header.scenario,
            crate_version: header.crate_version,
            trace_hash: header.trace_hash,
            ladder_mbps: header.ladder_mbps,
            log,
            reference,
        })
    }

    /// Writes the record to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SessionRecordError::Codec`] on serialization or I/O
    /// failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), SessionRecordError> {
        let bytes = self.to_bytes()?;
        fs::write(path, bytes).map_err(|e| SessionRecordError::Codec(RecordError::Io(e)))
    }

    /// Reads a record from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SessionRecordError::Codec`] on I/O failure or malformed
    /// bytes.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, SessionRecordError> {
        let bytes =
            fs::read(path).map_err(|e| SessionRecordError::Codec(RecordError::Io(e)))?;
        Self::from_bytes(&bytes)
    }

    /// Regenerates the scenario's trace and checks it against the
    /// recorded content hash.
    ///
    /// # Errors
    ///
    /// Returns [`SessionRecordError::TraceHashMismatch`] when the
    /// generators no longer reproduce the recorded trace.
    pub fn regenerate_trace(&self) -> Result<SessionTrace, SessionRecordError> {
        let trace = self.scenario.session.generate()?;
        let computed = stable_hash(&trace);
        if computed != self.trace_hash {
            return Err(SessionRecordError::TraceHashMismatch {
                stored: self.trace_hash,
                computed,
            });
        }
        Ok(trace)
    }

    /// Reconstructs the session result from the stored event log alone,
    /// through the PR 5 replay oracle. The stored reference is *not*
    /// consulted — compare with [`Self::verify`].
    ///
    /// # Errors
    ///
    /// Returns [`SessionRecordError::Replay`] when the log is not
    /// structurally replayable, or a trace/scenario error as above.
    pub fn replay(&self) -> Result<SessionResult, SessionRecordError> {
        let trace = self.regenerate_trace()?;
        let runner = self.scenario.runner();
        let oracle = Oracle::new(runner.simulator(), self.scenario.eta);
        Ok(oracle.replay(&trace, &self.log)?)
    }

    /// Replays the stored log and diffs the reconstruction against the
    /// stored reference field by field at the oracle's 1e-9 tolerance,
    /// plus the § 9 accounting identities.
    ///
    /// # Errors
    ///
    /// Returns a scenario/trace error when the session cannot be
    /// regenerated; divergences are reported in the verdict, not as
    /// errors.
    pub fn verify(&self) -> Result<ReplayVerdict, SessionRecordError> {
        self.verify_with_probe(&NULL_PROBE)
    }

    /// [`Self::verify`], emitting one `record/verify_pass` or
    /// `record/verify_fail` counter into `probe` (on top of the oracle's
    /// own `oracle/replay_*` counters).
    ///
    /// # Errors
    ///
    /// See [`Self::verify`].
    pub fn verify_with_probe(
        &self,
        probe: &dyn Probe,
    ) -> Result<ReplayVerdict, SessionRecordError> {
        let trace = self.regenerate_trace()?;
        let runner = self.scenario.runner();
        let oracle = Oracle::new(runner.simulator(), self.scenario.eta);
        let verdict = oracle.check_replay_with_probe(&trace, &self.reference, Some(&self.log), probe);
        let counter = match &verdict {
            ReplayVerdict::Pass { .. } => names::RECORD_VERIFY_PASS,
            _ => names::RECORD_VERIFY_FAIL,
        };
        probe.add(counter, 1);
        Ok(verdict)
    }

    /// Re-runs the scenario from scratch and returns the fresh record.
    /// With deterministic generators and simulator, the result encodes
    /// byte-identically to this record.
    ///
    /// # Errors
    ///
    /// See [`Self::record`].
    pub fn rerecord(&self) -> Result<Self, SessionRecordError> {
        Self::record(self.scenario.clone())
    }

    /// The stable manifest of this record (`session inspect --json`).
    #[must_use]
    pub fn manifest(&self, content_hash: u64) -> RecordManifest {
        RecordManifest {
            label: self.scenario.label(),
            crate_version: self.crate_version.clone(),
            scenario: self.scenario.clone(),
            trace_hash: self.trace_hash,
            content_hash,
            ladder_levels: self.ladder_mbps.len(),
            events: self.log.len(),
            tasks: self.reference.tasks.len(),
        }
    }

    /// Renders the human-readable report (`session inspect`): scenario
    /// parameters, headline result metrics, and the full event timeline.
    /// Golden fixtures commit this text next to the record, so it must
    /// stay deterministic.
    #[must_use]
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        let r = &self.reference;
        out.push_str(&format!("record   {}\n", self.scenario.label()));
        out.push_str(&format!("writer   v{}\n", self.crate_version));
        out.push_str(&format!("session  {}\n", self.scenario.session.label()));
        out.push_str(&format!("approach {}\n", self.scenario.approach.label()));
        out.push_str(&format!("eta      {:.3}\n", self.scenario.eta));
        match self.scenario.fault {
            Some(f) if f.is_active() => out.push_str(&format!(
                "fault    outages/min {:.3}, failure p {:.3}, collapses/min {:.3} (seed {})\n",
                f.outages_per_minute, f.failure_probability, f.collapses_per_minute, f.seed
            )),
            _ => out.push_str("fault    none\n"),
        }
        out.push_str(&format!("trace    hash {:#018x}\n", self.trace_hash));
        out.push_str(&format!(
            "ladder   {} levels, {:.3}..{:.3} Mbps\n",
            self.ladder_mbps.len(),
            self.ladder_mbps.first().copied().unwrap_or(0.0),
            self.ladder_mbps.last().copied().unwrap_or(0.0),
        ));
        out.push_str(&format!(
            "result   energy {:.3} J, mean qoe {:.4}, rebuffer {:.3} s, startup {:.3} s\n",
            r.total_energy().value(),
            r.mean_qoe.value(),
            r.total_rebuffer.value(),
            r.startup_delay.value()
        ));
        out.push_str(&format!(
            "         tasks {}, switches {}, retries {}, aborts {}, degraded {}\n",
            r.tasks.len(),
            r.switches,
            r.retries,
            r.aborts,
            r.degraded_segments
        ));
        out.push_str(&format!("events   {}\n", self.log.len()));
        out.push_str("timeline\n");
        out.push_str(&self.log.render_timeline());
        out
    }
}

/// The machine-readable summary of a record, rendered by
/// `session inspect --json` and committed as `manifest.json` next to
/// each golden fixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// ecas-lint: allow(pub-surface, reason = "returned by SessionRecord::manifest and serialized by the session bin")
pub struct RecordManifest {
    /// Scenario label (also the fixture directory name).
    pub label: String,
    /// Workspace version that wrote the record.
    pub crate_version: String,
    /// The full scenario.
    pub scenario: RecordScenario,
    /// Content hash of the regenerated trace.
    pub trace_hash: u64,
    /// FNV-1a content hash stored in the record header.
    pub content_hash: u64,
    /// Number of ladder levels.
    pub ladder_levels: usize,
    /// Number of events in the log.
    pub events: usize,
    /// Number of per-task records in the reference result.
    pub tasks: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_obs::MemoryRecorder;

    fn scenario() -> RecordScenario {
        RecordScenario {
            session: RecordedSession::Synthetic {
                context: Context::Walking,
                seconds: 40.0,
                seed: 9,
            },
            approach: Approach::Ours,
            eta: 0.5,
            fault: None,
        }
    }

    #[test]
    fn record_roundtrips_through_bytes() {
        let record = SessionRecord::record(scenario()).unwrap();
        let bytes = record.to_bytes().unwrap();
        let back = SessionRecord::from_bytes(&bytes).unwrap();
        assert_eq!(record, back);
    }

    #[test]
    fn encoding_is_deterministic_and_rerecord_is_byte_identical() {
        let record = SessionRecord::record(scenario()).unwrap();
        let again = record.rerecord().unwrap();
        assert_eq!(
            record.to_bytes().unwrap(),
            again.to_bytes().unwrap(),
            "re-recording the same scenario must reproduce identical bytes"
        );
    }

    #[test]
    fn verify_passes_for_fresh_records() {
        let record = SessionRecord::record(scenario()).unwrap();
        match record.verify().unwrap() {
            ReplayVerdict::Pass { checks } => assert!(checks > 0),
            other => panic!("expected a pass, got {other:?}"),
        }
    }

    #[test]
    fn verify_counters_reach_the_probe() {
        let recorder = MemoryRecorder::new();
        let record =
            SessionRecord::record_with_probe(scenario(), &recorder).unwrap();
        let verdict = record.verify_with_probe(&recorder).unwrap();
        assert!(matches!(verdict, ReplayVerdict::Pass { .. }));
        let snapshot = recorder.metrics().snapshot();
        assert_eq!(snapshot.counter(names::RECORD_RECORDED), Some(1));
        assert_eq!(snapshot.counter(names::RECORD_VERIFY_PASS), Some(1));
        assert_eq!(snapshot.counter(names::RECORD_VERIFY_FAIL), None);
    }

    #[test]
    fn replay_matches_reference_without_consulting_it() {
        let record = SessionRecord::record(scenario()).unwrap();
        let replayed = record.replay().unwrap();
        assert_eq!(replayed.tasks.len(), record.reference.tasks.len());
        assert!(
            (replayed.total_energy().value() - record.reference.total_energy().value()).abs()
                < 1e-6
        );
    }

    #[test]
    fn tampered_reference_fails_verification() {
        let mut record = SessionRecord::record(scenario()).unwrap();
        record.reference.switches += 1;
        match record.verify().unwrap() {
            ReplayVerdict::Fail { divergences } => {
                assert!(divergences.iter().any(|d| d.field == "switches"));
            }
            other => panic!("expected a failure, got {other:?}"),
        }
    }

    #[test]
    fn stale_trace_hash_is_detected() {
        let mut record = SessionRecord::record(scenario()).unwrap();
        record.trace_hash ^= 1;
        assert!(matches!(
            record.regenerate_trace(),
            Err(SessionRecordError::TraceHashMismatch { .. })
        ));
        assert!(matches!(
            record.verify(),
            Err(SessionRecordError::TraceHashMismatch { .. })
        ));
    }

    #[test]
    fn table_v_ids_are_validated() {
        for bad in [0u8, 6, 200] {
            let session = RecordedSession::TableV { id: bad };
            assert!(matches!(
                session.generate(),
                Err(SessionRecordError::Scenario(_))
            ));
        }
        assert!(RecordedSession::TableV { id: 1 }.generate().is_ok());
    }

    #[test]
    fn hostile_durations_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, -5.0, 0.0, 3.9] {
            let session = RecordedSession::Commute {
                seconds: bad,
                seed: 1,
            };
            assert!(session.generate().is_err(), "duration {bad} accepted");
        }
    }

    #[test]
    fn faulted_records_roundtrip_and_verify() {
        let scenario = RecordScenario {
            session: RecordedSession::Synthetic {
                context: Context::MovingVehicle,
                seconds: 60.0,
                seed: 4,
            },
            approach: Approach::Ours,
            eta: 0.5,
            fault: Some(FaultSpec::moderate(4)),
        };
        let record = SessionRecord::record(scenario).unwrap();
        assert!(record.reference.retries + record.reference.aborts > 0
            || record.reference.outage_time.value() > 0.0);
        let bytes = record.to_bytes().unwrap();
        let back = SessionRecord::from_bytes(&bytes).unwrap();
        assert_eq!(record, back);
        assert!(matches!(back.verify().unwrap(), ReplayVerdict::Pass { .. }));
    }

    #[test]
    fn report_and_manifest_are_deterministic() {
        let record = SessionRecord::record(scenario()).unwrap();
        let report = record.render_report();
        assert!(report.contains("approach Ours"));
        assert!(report.contains("timeline"));
        assert_eq!(report, record.rerecord().unwrap().render_report());
        let manifest = record.manifest(42);
        assert_eq!(manifest.content_hash, 42);
        assert_eq!(manifest.events, record.log.len());
        assert_eq!(manifest.label, "walking-40s-seed9-ours");
    }

    #[test]
    fn fleet_sessions_regenerate_the_population_trace() {
        let session = RecordedSession::Fleet {
            users: 8,
            seed: 11,
            index: 5,
            mean_duration_s: 30.0,
        };
        let trace = session.generate().unwrap();
        let expected = PopulationSpec::new(8, 11)
            .mean_duration(Seconds::new(30.0))
            .user(5)
            .synthesize();
        assert_eq!(stable_hash(&trace), stable_hash(&expected));
        // And the full record pipeline holds for fleet sessions too.
        let record = SessionRecord::record(RecordScenario {
            session,
            approach: Approach::Ours,
            eta: 0.5,
            fault: None,
        })
        .unwrap();
        let back = SessionRecord::from_bytes(&record.to_bytes().unwrap()).unwrap();
        assert!(matches!(back.verify().unwrap(), ReplayVerdict::Pass { .. }));
    }

    #[test]
    fn fleet_indices_and_durations_are_validated() {
        let out_of_range = RecordedSession::Fleet {
            users: 4,
            seed: 1,
            index: 4,
            mean_duration_s: 30.0,
        };
        assert!(matches!(
            out_of_range.generate(),
            Err(SessionRecordError::Scenario(_))
        ));
        let bad_duration = RecordedSession::Fleet {
            users: 4,
            seed: 1,
            index: 0,
            mean_duration_s: f64::NAN,
        };
        assert!(bad_duration.generate().is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RecordedSession::TableV { id: 3 }.label(), "tablev3");
        assert_eq!(
            RecordedSession::Commute {
                seconds: 180.0,
                seed: 2
            }
            .label(),
            "commute-180s-seed2"
        );
        assert_eq!(
            RecordedSession::Fleet {
                users: 100,
                seed: 7,
                index: 42,
                mean_duration_s: 120.0
            }
            .label(),
            "fleet7-120s-u42"
        );
        let s = RecordScenario {
            session: RecordedSession::TableV { id: 1 },
            approach: Approach::Festive,
            eta: 0.5,
            fault: Some(FaultSpec::moderate(1)),
        };
        assert_eq!(s.label(), "tablev1-festive-fault");
    }
}
