//! The shared ordered work-stealing pool.
//!
//! Extracted from `SweepEngine::execute_parallel` so every bulk
//! executor in this crate — the sweep grid, the fleet batches riding on
//! it, and the record-corpus subsystem (batch recording and parallel
//! corpus verification) — schedules work the same way: a next-index
//! counter hands items to workers as they free up, and each result
//! lands in its preassigned slot, so the output order always matches a
//! sequential run regardless of completion order. That order stability
//! is what the workspace's byte-identity guarantees (sweep results,
//! fleet reports, corpus verify summaries) are built on.

use parking_lot::Mutex;

/// Resolves a requested worker count: `0` means one worker per
/// available core, and the result never exceeds the item count.
pub(crate) fn resolve_workers(requested: usize, items: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let workers = if requested == 0 { auto } else { requested };
    workers.min(items).max(1)
}

/// Runs `f` over every item through a work-stealing worker pool and
/// returns the results in item order (identical to a sequential map).
/// `requested == 0` sizes the pool to the available cores; a resolved
/// width of one runs on the caller's thread with no pool at all.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub(crate) fn run_ordered<T, R, F>(items: &[T], requested: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = resolve_workers(requested, items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let next: Mutex<usize> = Mutex::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let idx = {
                    let mut guard = next.lock();
                    let idx = *guard;
                    if idx >= items.len() {
                        return;
                    }
                    *guard += 1;
                    idx
                };
                let Some(item) = items.get(idx) else {
                    return;
                };
                let result = f(item);
                if let Some(slot) = results.lock().get_mut(idx) {
                    *slot = Some(result);
                }
            });
        }
    })
    // ecas-lint: allow(panic-safety, reason = "a worker panic must propagate to the caller, not be swallowed into a partial result set")
    .expect("pool worker panicked");
    results
        .into_inner()
        .into_iter()
        // ecas-lint: allow(panic-safety, reason = "the job queue assigns every slot index exactly once; an empty slot is a scheduler bug worth crashing on")
        .map(|r| r.expect("every pool job filled its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_item_order_across_widths() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|v| v * 3 + 1).collect();
        for requested in [0, 1, 2, 5, 128] {
            let got = run_ordered(&items, requested, |v| v * 3 + 1);
            assert_eq!(got, expected, "requested={requested}");
        }
        assert!(run_ordered(&[] as &[u64], 4, |v| *v).is_empty());
    }

    #[test]
    fn worker_resolution_is_bounded() {
        assert_eq!(resolve_workers(3, 10), 3);
        assert_eq!(resolve_workers(16, 2), 2);
        assert!(resolve_workers(0, 1000) >= 1);
        assert_eq!(resolve_workers(0, 1), 1);
    }
}
