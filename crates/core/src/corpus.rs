//! Record corpora: fleets of `.ecasr` session records as first-class
//! artifacts (DESIGN.md § 14).
//!
//! PR 9 made one session replayable as a versioned record; PR 8 scaled
//! simulation to fleets. This module joins the two layers:
//!
//! * [`batch_record`] runs a batch of [`RecordScenario`]s through the
//!   shared worker pool (in bounded batches) and writes each record
//!   into a **content-addressable corpus directory**: the file name is
//!   the record's sweep cache key (`<key>.ecasr`, the same FNV-1a
//!   stable-hash convention as the result cache), plus a sorted
//!   `corpus.json` index manifest.
//! * [`verify`] streams `session verify` over a whole corpus in
//!   parallel with an order-stable summary — byte-identical across
//!   `--jobs` widths — and an optional substring filter on scenario
//!   labels.
//! * Because corpus files are named by their sweep cache key, a corpus
//!   directory doubles as a warm result cache: `SweepEngine`'s cached
//!   policy serves unobserved cells straight from the recorded
//!   references (never trusted — hash and key are revalidated on every
//!   load, and a corrupt record degrades to a miss plus recompute).
//! * [`diff`] compares two corpora record-by-record, field-by-field at
//!   the replay oracle's 1e-9 tolerance and renders the divergence
//!   table.
//!
//! # Examples
//!
//! ```
//! use ecas_core::corpus::{self, CorpusOptions, VerifyOptions};
//! use ecas_core::Approach;
//!
//! let dir = std::env::temp_dir().join(format!("ecas-corpus-doc-{}", std::process::id()));
//! let scenarios = corpus::fleet_scenarios(2, 7, 20.0, Approach::Ours, 0.5, None);
//! let index = corpus::batch_record(&dir, &scenarios, &CorpusOptions::default()).unwrap();
//! assert_eq!(index.entries.len(), 2);
//! let paths = corpus::list(&dir).unwrap();
//! let summary = corpus::verify(&paths, &VerifyOptions::default());
//! assert_eq!(summary.failures, 0);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ecas_sim::{FaultSpec, SessionResult};
use ecas_trace::record::RECORD_EXTENSION;
use serde::{Deserialize, Serialize};

use crate::approach::Approach;
use crate::oracle::{self, ReplayVerdict};
use crate::pool;
use crate::record::{RecordScenario, RecordedSession, SessionRecord, SessionRecordError};
use crate::sweep::{record_cell_key, record_path};

/// File name of the index manifest written next to the records.
// ecas-lint: allow(pub-surface, reason = "corpus on-disk contract documented in DESIGN.md section 14")
pub const INDEX_FILE: &str = "corpus.json";

/// Schema version of the index manifest.
pub const INDEX_FORMAT: u32 = 1;

/// Error produced while building, scanning or diffing a corpus.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem failure on the corpus directory or a record file.
    Io(io::Error),
    /// A scenario could not be recorded, or a record file could not be
    /// parsed.
    Record(SessionRecordError),
    /// The index manifest was malformed.
    Index(String),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "corpus i/o: {e}"),
            CorpusError::Record(e) => write!(f, "{e}"),
            CorpusError::Index(msg) => write!(f, "corpus index: {msg}"),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io(e) => Some(e),
            CorpusError::Record(e) => Some(e),
            CorpusError::Index(_) => None,
        }
    }
}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        CorpusError::Io(e)
    }
}

impl From<SessionRecordError> for CorpusError {
    fn from(e: SessionRecordError) -> Self {
        CorpusError::Record(e)
    }
}

/// Knobs for [`batch_record`].
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Worker count for the recording pool (`0` = one per core).
    pub jobs: usize,
    /// Scenarios recorded (and held in memory) per pool dispatch — the
    /// memory bound of a large batch-record run.
    pub batch: usize,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        Self {
            jobs: 0,
            batch: 256,
        }
    }
}

/// One line of the index manifest: where a record lives and what it
/// holds, without re-reading the record itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
// ecas-lint: allow(pub-surface, reason = "exposed through CorpusIndex::entries, part of the corpus.json schema")
pub struct CorpusEntry {
    /// The sweep cache key — also the record's file stem.
    pub key: String,
    /// The scenario label ([`RecordScenario::label`]).
    pub label: String,
    /// Content hash of the regenerated trace.
    pub trace_hash: u64,
    /// Number of events in the recorded log.
    pub events: usize,
}

/// The `corpus.json` manifest: every record in the directory, sorted by
/// key so re-recording the same scenarios reproduces identical bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusIndex {
    /// Manifest schema version ([`INDEX_FORMAT`]).
    pub format: u32,
    /// Entries sorted by `key`, one per record file.
    pub entries: Vec<CorpusEntry>,
}

impl CorpusIndex {
    /// Reads and validates the manifest of a corpus directory.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] when `corpus.json` cannot be read and
    /// [`CorpusError::Index`] when it is malformed or a different
    /// format version.
    pub fn load(dir: &Path) -> Result<Self, CorpusError> {
        let text = fs::read_to_string(dir.join(INDEX_FILE))?;
        let index: CorpusIndex =
            serde_json::from_str(&text).map_err(|e| CorpusError::Index(e.to_string()))?;
        if index.format != INDEX_FORMAT {
            return Err(CorpusError::Index(format!(
                "format {} is not the supported {INDEX_FORMAT}",
                index.format
            )));
        }
        Ok(index)
    }
}

/// Records every scenario into `dir` as `<key>.ecasr` — the key being
/// the sweep cache key the record answers for — and writes the sorted
/// [`CorpusIndex`] manifest. Scenarios are dispatched through the
/// shared worker pool in batches of [`CorpusOptions::batch`], so memory
/// stays bounded for corpus-scale inputs.
///
/// Two scenarios that hash to the same key (true duplicates — the
/// records are deterministic, so their bytes are identical) collapse to
/// one file and one index entry.
///
/// # Errors
///
/// Returns the first recording or I/O failure. Partial output may
/// remain in `dir`; re-running overwrites it deterministically.
pub fn batch_record(
    dir: &Path,
    scenarios: &[RecordScenario],
    options: &CorpusOptions,
) -> Result<CorpusIndex, CorpusError> {
    fs::create_dir_all(dir)?;
    let mut entries: Vec<CorpusEntry> = Vec::with_capacity(scenarios.len());
    for chunk in scenarios.chunks(options.batch.max(1)) {
        let recorded = pool::run_ordered(chunk, options.jobs, |scenario| {
            let record = SessionRecord::record(scenario.clone())?;
            let bytes = record.to_bytes()?;
            Ok::<(SessionRecord, Vec<u8>), SessionRecordError>((record, bytes))
        });
        for item in recorded {
            let (record, bytes) = item?;
            let key = record_cell_key(&record);
            fs::write(record_path(dir, &key), &bytes)?;
            entries.push(CorpusEntry {
                key,
                label: record.scenario.label(),
                trace_hash: record.trace_hash,
                events: record.log.len(),
            });
        }
    }
    entries.sort_by(|a, b| a.key.cmp(&b.key));
    entries.dedup();
    let index = CorpusIndex {
        format: INDEX_FORMAT,
        entries,
    };
    let json = serde_json::to_string_pretty(&index)
        .map_err(|e| CorpusError::Index(e.to_string()))?;
    fs::write(dir.join(INDEX_FILE), json + "\n")?;
    Ok(index)
}

/// Lists the record files of a corpus directory, sorted by file name
/// (equivalently: by key) for order-stable iteration.
///
/// # Errors
///
/// Returns [`CorpusError::Io`] when the directory cannot be read.
pub fn list(dir: &Path) -> Result<Vec<PathBuf>, CorpusError> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| {
            path.extension()
                .is_some_and(|ext| ext == RECORD_EXTENSION)
        })
        .collect();
    paths.sort();
    Ok(paths)
}

/// Knobs for [`verify`].
#[derive(Debug, Clone, Default)]
pub struct VerifyOptions {
    /// Worker count for the verification pool (`0` = one per core).
    pub jobs: usize,
    /// Verify only records whose scenario label contains this
    /// substring; everything else is skipped (counted, not listed).
    pub filter: Option<String>,
}

/// Per-record outcome of a corpus verification, in input order.
enum VerifyOutcome {
    Pass(String),
    Fail(String),
    Skip,
}

/// The order-stable result of verifying a corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
// ecas-lint: allow(pub-surface, reason = "returned by corpus::verify; the session bin consumes it structurally")
pub struct VerifySummary {
    /// Records verified (excludes skipped).
    pub records: usize,
    /// Records that failed to load, replay, or match their reference.
    pub failures: usize,
    /// Records excluded by [`VerifyOptions::filter`].
    pub skipped: usize,
    lines: Vec<String>,
}

impl VerifySummary {
    /// Renders the summary: one `PASS`/`FAIL` line per verified record
    /// in input order, then the `records=… failures=…` footer (with a
    /// `skipped=…` field only when the filter excluded anything).
    /// Deterministic for a given input order — the pool preserves it —
    /// so two runs at different `--jobs` print identical bytes.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!(
            "records={} failures={}",
            self.records, self.failures
        ));
        if self.skipped > 0 {
            out.push_str(&format!(" skipped={}", self.skipped));
        }
        out.push('\n');
        out
    }
}

/// Replays every record against its stored reference through the
/// worker pool, preserving input order in the summary. Load and parse
/// failures are `FAIL` lines, not errors — a corpus with one rotten
/// record still reports the other ones.
#[must_use]
pub fn verify(paths: &[PathBuf], options: &VerifyOptions) -> VerifySummary {
    let outcomes = pool::run_ordered(paths, options.jobs, |path| {
        let shown = path.display();
        let record = match SessionRecord::load(path) {
            Ok(record) => record,
            Err(e) => return VerifyOutcome::Fail(format!("FAIL {shown}: {e}")),
        };
        if let Some(filter) = &options.filter {
            if !record.scenario.label().contains(filter.as_str()) {
                return VerifyOutcome::Skip;
            }
        }
        match record.verify() {
            Ok(ReplayVerdict::Pass { checks }) => {
                VerifyOutcome::Pass(format!("PASS {shown} ({checks} checks)"))
            }
            Ok(verdict) => VerifyOutcome::Fail(format!("FAIL {shown}: {}", verdict.render())),
            Err(e) => VerifyOutcome::Fail(format!("FAIL {shown}: {e}")),
        }
    });
    let mut summary = VerifySummary {
        records: 0,
        failures: 0,
        skipped: 0,
        lines: Vec::new(),
    };
    for outcome in outcomes {
        match outcome {
            VerifyOutcome::Pass(line) => {
                summary.records += 1;
                summary.lines.push(line);
            }
            VerifyOutcome::Fail(line) => {
                summary.records += 1;
                summary.failures += 1;
                summary.lines.push(line);
            }
            VerifyOutcome::Skip => summary.skipped += 1,
        }
    }
    summary
}

/// The outcome of comparing two corpora record-by-record.
#[derive(Debug, Clone, PartialEq, Eq)]
// ecas-lint: allow(pub-surface, reason = "returned by corpus::diff; the session bin consumes it structurally")
pub struct CorpusDiff {
    /// Labels present in both corpora whose references agree at the
    /// oracle tolerance.
    pub matched: usize,
    /// Labels present in both corpora whose references diverge.
    pub diverged: usize,
    /// Labels only in the first corpus.
    pub only_a: usize,
    /// Labels only in the second corpus.
    pub only_b: usize,
    lines: Vec<String>,
}

impl CorpusDiff {
    /// Whether every shared label matched and neither side had extras.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diverged == 0 && self.only_a == 0 && self.only_b == 0
    }

    /// Renders the divergence table: one row per label in sorted label
    /// order (`match` / `diverge` / `only-a` / `only-b`), divergence
    /// details indented under their row, then the
    /// `matched=… diverged=… only_a=… only_b=…` footer.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!(
            "matched={} diverged={} only_a={} only_b={}\n",
            self.matched, self.diverged, self.only_a, self.only_b
        ));
        out
    }
}

/// Loads every record of a corpus into a label-keyed map of reference
/// results.
fn load_references(dir: &Path) -> Result<BTreeMap<String, SessionResult>, CorpusError> {
    let mut map = BTreeMap::new();
    for path in list(dir)? {
        let record = SessionRecord::load(&path)?;
        map.insert(record.scenario.label(), record.reference);
    }
    Ok(map)
}

/// Compares two corpora by scenario label: records present in both are
/// diffed field-by-field at the replay oracle's 1e-9 tolerance (the
/// exact comparison `session verify` uses), unmatched labels are
/// reported per side. Rows come out in sorted label order, so the
/// rendered table is deterministic.
///
/// # Errors
///
/// Returns [`CorpusError`] when either directory cannot be scanned or a
/// record cannot be parsed — a diff over unreadable inputs would be
/// meaningless, so unlike [`verify`] this does not degrade.
pub fn diff(a: &Path, b: &Path) -> Result<CorpusDiff, CorpusError> {
    let refs_a = load_references(a)?;
    let mut refs_b = load_references(b)?;
    let mut diff = CorpusDiff {
        matched: 0,
        diverged: 0,
        only_a: 0,
        only_b: 0,
        lines: Vec::new(),
    };
    for (label, reference) in &refs_a {
        match refs_b.remove(label) {
            Some(other) => match oracle::diff_results(reference, &other) {
                ReplayVerdict::Fail { divergences } => {
                    diff.diverged += 1;
                    diff.lines.push(format!("diverge  {label}"));
                    for d in divergences {
                        diff.lines.push(format!("         {d}"));
                    }
                }
                _ => {
                    diff.matched += 1;
                    diff.lines.push(format!("match    {label}"));
                }
            },
            None => {
                diff.only_a += 1;
                diff.lines.push(format!("only-a   {label}"));
            }
        }
    }
    for label in refs_b.keys() {
        diff.only_b += 1;
        diff.lines.push(format!("only-b   {label}"));
    }
    Ok(diff)
}

/// The scenarios of one fleet slice: every user of a
/// [`PopulationSpec`](ecas_trace::population::PopulationSpec)-style
/// population (default mix and diurnal profile) under one approach, η
/// and fault spec — the input [`batch_record`] turns into a corpus that
/// can warm a [`FleetEngine`](crate::fleet::FleetEngine) run.
#[must_use]
pub fn fleet_scenarios(
    users: u64,
    seed: u64,
    mean_duration_s: f64,
    approach: Approach,
    eta: f64,
    fault: Option<FaultSpec>,
) -> Vec<RecordScenario> {
    (0..users)
        .map(|index| RecordScenario {
            session: RecordedSession::Fleet {
                users,
                seed,
                index,
                mean_duration_s,
            },
            approach,
            eta,
            fault,
        })
        .collect()
}

/// The scenarios of the five Table V evaluation traces under one
/// approach, η and fault spec.
#[must_use]
pub fn tablev_scenarios(
    approach: Approach,
    eta: f64,
    fault: Option<FaultSpec>,
) -> Vec<RecordScenario> {
    (1..=5u8)
        .map(|id| RecordScenario {
            session: RecordedSession::TableV { id },
            approach,
            eta,
            fault,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ecas-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_fleet() -> Vec<RecordScenario> {
        fleet_scenarios(3, 11, 20.0, Approach::Ours, 0.5, None)
    }

    #[test]
    fn batch_record_builds_a_keyed_indexed_corpus() {
        let dir = temp_dir("batch");
        let index = batch_record(&dir, &small_fleet(), &CorpusOptions::default()).unwrap();
        assert_eq!(index.entries.len(), 3);
        let keys: Vec<&String> = index.entries.iter().map(|e| &e.key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "index entries are key-sorted");
        for entry in &index.entries {
            let path = record_path(&dir, &entry.key);
            let record = SessionRecord::load(&path).unwrap();
            assert_eq!(record_cell_key(&record), entry.key);
            assert_eq!(record.scenario.label(), entry.label);
        }
        assert_eq!(CorpusIndex::load(&dir).unwrap(), index);
        assert_eq!(list(&dir).unwrap().len(), 3);
        // Re-recording is deterministic: same files, same manifest.
        let again = batch_record(&dir, &small_fleet(), &CorpusOptions { jobs: 2, batch: 2 })
            .unwrap();
        assert_eq!(again, index);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_scenarios_collapse_to_one_entry() {
        let dir = temp_dir("dup");
        let mut scenarios = small_fleet();
        scenarios.extend(small_fleet());
        let index = batch_record(&dir, &scenarios, &CorpusOptions::default()).unwrap();
        assert_eq!(index.entries.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_is_order_stable_and_filterable() {
        let dir = temp_dir("verify");
        batch_record(&dir, &small_fleet(), &CorpusOptions::default()).unwrap();
        let paths = list(&dir).unwrap();
        let sequential = verify(&paths, &VerifyOptions { jobs: 1, filter: None });
        assert_eq!(sequential.records, 3);
        assert_eq!(sequential.failures, 0);
        let parallel = verify(&paths, &VerifyOptions { jobs: 3, filter: None });
        assert_eq!(
            sequential.render(),
            parallel.render(),
            "summary must be byte-identical across pool widths"
        );
        let filtered = verify(
            &paths,
            &VerifyOptions {
                jobs: 0,
                filter: Some("u1-".to_string()),
            },
        );
        assert_eq!(filtered.records, 1);
        assert_eq!(filtered.skipped, 2);
        assert!(filtered.render().contains("skipped=2"));
        let none = verify(
            &paths,
            &VerifyOptions {
                jobs: 0,
                filter: Some("no-such-label".to_string()),
            },
        );
        assert_eq!(none.records, 0);
        assert_eq!(none.skipped, 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_reports_rotten_records_without_failing_the_rest() {
        let dir = temp_dir("rotten");
        batch_record(&dir, &small_fleet(), &CorpusOptions::default()).unwrap();
        let paths = list(&dir).unwrap();
        let first = paths.first().unwrap();
        fs::write(first, b"not a record").unwrap();
        let summary = verify(&paths, &VerifyOptions::default());
        assert_eq!(summary.records, 3);
        assert_eq!(summary.failures, 1);
        assert!(summary.render().starts_with("FAIL "));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_against_self_is_clean_and_tampering_diverges() {
        let dir_a = temp_dir("diff-a");
        let dir_b = temp_dir("diff-b");
        batch_record(&dir_a, &small_fleet(), &CorpusOptions::default()).unwrap();
        batch_record(&dir_b, &small_fleet(), &CorpusOptions::default()).unwrap();
        let clean = diff(&dir_a, &dir_b).unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.matched, 3);
        assert!(clean
            .render()
            .contains("matched=3 diverged=0 only_a=0 only_b=0"));

        // Tamper with one reference on side B and drop another record.
        let paths = list(&dir_b).unwrap();
        let (tampered, dropped) = (paths.first().unwrap(), paths.get(1).unwrap());
        let mut record = SessionRecord::load(tampered).unwrap();
        record.reference.switches += 1;
        record.save(tampered).unwrap();
        fs::remove_file(dropped).unwrap();
        let dirty = diff(&dir_a, &dir_b).unwrap();
        assert_eq!(dirty.diverged, 1);
        assert_eq!(dirty.only_a, 1);
        assert_eq!(dirty.matched, 1);
        assert!(dirty.render().contains("diverge"));
        assert!(dirty.render().contains("switches"));
        fs::remove_dir_all(&dir_a).ok();
        fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn scenario_helpers_cover_their_domains() {
        let fleet = fleet_scenarios(4, 2, 30.0, Approach::Youtube, 0.4, None);
        assert_eq!(fleet.len(), 4);
        assert!(matches!(
            fleet.last().unwrap().session,
            RecordedSession::Fleet { index: 3, users: 4, .. }
        ));
        assert!((fleet.first().unwrap().eta - 0.4).abs() < 1e-12);
        let tablev = tablev_scenarios(Approach::Ours, 0.5, None);
        assert_eq!(tablev.len(), 5);
        assert!(matches!(
            tablev.first().unwrap().session,
            RecordedSession::TableV { id: 1 }
        ));
    }
}
