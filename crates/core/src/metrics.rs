//! The paper's comparison metrics (Figures 5–7).
//!
//! All savings/degradations are measured against the "Youtube" baseline
//! (everything at the ladder maximum), exactly as in Section V:
//!
//! * **whole-phone energy saving** — `1 − E_a / E_youtube` (Fig. 5b left);
//! * **extra-energy saving** — the same after subtracting the session's
//!   *base energy* (everything at the lowest bitrate) from both sides
//!   (Fig. 5b right / Fig. 5c);
//! * **QoE degradation** — `1 − Q_a / Q_youtube` (Fig. 6c);
//! * **ratio** — energy saving over QoE degradation (Fig. 7).

use ecas_sim::result::SessionResult;
use ecas_types::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

use crate::approach::Approach;
use crate::runner::ExperimentRunner;
use crate::sweep::{CacheStats, ExecPolicy, SweepEngine};
use ecas_trace::session::SessionTrace;

/// Per-approach metrics on one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// ecas-lint: allow(pub-surface, reason = "exposed through TraceComparison's public fields and accessors")
pub struct ApproachMetrics {
    /// The approach.
    pub approach: Approach,
    /// Total (whole-phone) energy.
    pub energy: Joules,
    /// Energy above the trace's base energy.
    pub extra_energy: Joules,
    /// Mean per-task QoE.
    pub qoe: f64,
    /// Whole-phone energy saving vs Youtube, in `[0, 1]`.
    pub energy_saving: f64,
    /// Extra-energy saving vs Youtube, in `[0, 1]`.
    pub extra_energy_saving: f64,
    /// QoE degradation vs Youtube (can be slightly negative if better).
    pub qoe_degradation: f64,
    /// Total rebuffering. The serialized field name keeps the unit; the
    /// newtype keeps the arithmetic honest.
    pub rebuffer_seconds: Seconds,
    /// Number of bitrate switches.
    pub switches: usize,
}

impl ApproachMetrics {
    /// Fig. 7's ratio: whole-phone energy saving over QoE degradation.
    /// Degradations below 0.1 % are clamped to 0.1 % so a
    /// zero-degradation approach yields a large-but-finite ratio.
    #[must_use]
    pub fn saving_over_degradation(&self) -> f64 {
        self.energy_saving / self.qoe_degradation.max(0.001)
    }
}

/// All approaches compared on one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// ecas-lint: allow(pub-surface, reason = "re-exported metrics-comparison type; part of the crate's published surface")
pub struct TraceComparison {
    /// Trace name ("trace1" … "trace5").
    pub trace: String,
    /// The trace's base energy (everything at the lowest bitrate).
    pub base_energy: Joules,
    /// Per-approach metrics, in the order the approaches were given.
    pub approaches: Vec<ApproachMetrics>,
}

impl TraceComparison {
    /// Builds the comparison from session results.
    ///
    /// `results` must contain exactly one result per approach in
    /// `approaches` order, all from the same trace, and the set must
    /// include [`Approach::Youtube`] to act as the baseline.
    ///
    /// # Panics
    ///
    /// Panics if the result/approach lengths differ or Youtube is absent.
    #[must_use]
    pub fn from_results(
        trace: impl Into<String>,
        base_energy: Joules,
        approaches: &[Approach],
        results: &[SessionResult],
    ) -> Self {
        assert_eq!(
            approaches.len(),
            results.len(),
            "one result per approach required"
        );
        let baseline = approaches
            .iter()
            .zip(results)
            .find_map(|(a, r)| (*a == Approach::Youtube).then_some(r));
        let Some(baseline) = baseline else {
            // ecas-lint: allow(panic-safety, reason = "documented # Panics contract: the Youtube baseline is a hard precondition of every comparison")
            panic!("the Youtube baseline must be included");
        };
        let e_ref = baseline.total_energy();
        let q_ref = baseline.mean_qoe.value();
        let extra_ref = (e_ref.value() - base_energy.value()).max(1e-9);

        let approaches = approaches
            .iter()
            .zip(results)
            .map(|(a, r)| {
                let energy = r.total_energy();
                let extra = (energy.value() - base_energy.value()).max(0.0);
                ApproachMetrics {
                    approach: *a,
                    energy,
                    extra_energy: Joules::new(extra),
                    qoe: r.mean_qoe.value(),
                    energy_saving: 1.0 - energy.value() / e_ref.value(),
                    extra_energy_saving: 1.0 - extra / extra_ref,
                    qoe_degradation: 1.0 - r.mean_qoe.value() / q_ref,
                    rebuffer_seconds: r.total_rebuffer,
                    switches: r.switches,
                }
            })
            .collect();

        Self {
            trace: trace.into(),
            base_energy,
            approaches,
        }
    }

    /// The metrics row for `approach`, if present.
    #[must_use]
    pub fn approach(&self, approach: Approach) -> Option<&ApproachMetrics> {
        self.approaches.iter().find(|m| m.approach == approach)
    }
}

/// Aggregated comparison over several traces (the "on average" numbers
/// quoted in Section V-B/C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonSummary {
    /// The per-trace comparisons the summary was built from.
    pub traces: Vec<TraceComparison>,
}

impl ComparisonSummary {
    /// Runs the full evaluation grid for `approaches` over `sessions` on
    /// an auto-sized worker pool. Sugar for [`Self::evaluate_with`] under
    /// [`ExecPolicy::parallel`].
    #[must_use]
    pub fn evaluate(
        runner: &ExperimentRunner,
        sessions: &[SessionTrace],
        approaches: &[Approach],
    ) -> Self {
        Self::evaluate_with(runner, sessions, approaches, &ExecPolicy::parallel())
    }

    /// Runs the full evaluation grid under an explicit [`ExecPolicy`].
    /// The per-session base-energy runs go through the same pool and
    /// cache as the approach cells (see [`SweepEngine::comparison`]).
    #[must_use]
    pub fn evaluate_with(
        runner: &ExperimentRunner,
        sessions: &[SessionTrace],
        approaches: &[Approach],
        policy: &ExecPolicy,
    ) -> Self {
        Self::evaluate_with_stats(runner, sessions, approaches, policy).0
    }

    /// [`Self::evaluate_with`] returning the engine's [`CacheStats`] as
    /// well, so callers running under a cached policy can report cache
    /// activity (the bench binaries print it to stderr).
    #[must_use]
    pub fn evaluate_with_stats(
        runner: &ExperimentRunner,
        sessions: &[SessionTrace],
        approaches: &[Approach],
        policy: &ExecPolicy,
    ) -> (Self, CacheStats) {
        let engine = SweepEngine::new(runner.clone());
        let summary = engine.comparison(sessions, approaches, policy);
        let stats = engine.stats();
        (summary, stats)
    }

    /// Mean whole-phone energy saving of `approach` across traces.
    #[must_use]
    pub fn mean_energy_saving(&self, approach: Approach) -> f64 {
        self.mean_of(approach, |m| m.energy_saving)
    }

    /// Mean extra-energy saving of `approach` across traces.
    #[must_use]
    pub fn mean_extra_energy_saving(&self, approach: Approach) -> f64 {
        self.mean_of(approach, |m| m.extra_energy_saving)
    }

    /// Mean QoE degradation of `approach` across traces.
    #[must_use]
    pub fn mean_qoe_degradation(&self, approach: Approach) -> f64 {
        self.mean_of(approach, |m| m.qoe_degradation)
    }

    /// Mean QoE of `approach` across traces (Fig. 6b).
    #[must_use]
    pub fn mean_qoe(&self, approach: Approach) -> f64 {
        self.mean_of(approach, |m| m.qoe)
    }

    /// Mean Fig. 7 ratio of `approach` across traces.
    #[must_use]
    pub fn mean_saving_over_degradation(&self, approach: Approach) -> f64 {
        self.mean_of(approach, ApproachMetrics::saving_over_degradation)
    }

    fn mean_of(&self, approach: Approach, f: impl Fn(&ApproachMetrics) -> f64) -> f64 {
        let values: Vec<f64> = self
            .traces
            .iter()
            .filter_map(|t| t.approach(approach))
            .map(&f)
            .collect();
        assert!(
            !values.is_empty(),
            "approach {} missing from summary",
            approach.label()
        );
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_trace::synth::context::{Context, ContextSchedule};
    use ecas_trace::synth::SessionGenerator;
    use ecas_types::units::Seconds;

    fn vehicle_session(seed: u64) -> SessionTrace {
        SessionGenerator::new(
            format!("veh{seed}"),
            ContextSchedule::constant(Context::MovingVehicle),
            Seconds::new(120.0),
            seed,
        )
        .generate()
    }

    #[test]
    fn youtube_has_zero_saving_and_degradation() {
        let runner = ExperimentRunner::paper();
        let sessions = vec![vehicle_session(1)];
        let summary = ComparisonSummary::evaluate(&runner, &sessions, &Approach::paper_set());
        assert!(summary.mean_energy_saving(Approach::Youtube).abs() < 1e-12);
        assert!(summary.mean_qoe_degradation(Approach::Youtube).abs() < 1e-12);
    }

    #[test]
    fn ours_saves_energy_on_vehicle_traces() {
        let runner = ExperimentRunner::paper();
        let sessions = vec![vehicle_session(2)];
        let summary = ComparisonSummary::evaluate(&runner, &sessions, &Approach::paper_set());
        let saving = summary.mean_energy_saving(Approach::Ours);
        assert!(saving > 0.1, "ours saved only {saving}");
        let degradation = summary.mean_qoe_degradation(Approach::Ours);
        assert!(degradation < 0.15, "ours degraded QoE by {degradation}");
    }

    #[test]
    fn extra_saving_exceeds_whole_phone_saving() {
        let runner = ExperimentRunner::paper();
        let sessions = vec![vehicle_session(3)];
        let summary = ComparisonSummary::evaluate(&runner, &sessions, &Approach::paper_set());
        let whole = summary.mean_energy_saving(Approach::Ours);
        let extra = summary.mean_extra_energy_saving(Approach::Ours);
        assert!(
            extra > whole,
            "extra saving ({extra}) must exceed whole-phone saving ({whole})"
        );
    }

    #[test]
    fn ratio_clamps_small_degradation() {
        let m = ApproachMetrics {
            approach: Approach::Ours,
            energy: Joules::new(100.0),
            extra_energy: Joules::new(10.0),
            qoe: 4.0,
            energy_saving: 0.3,
            extra_energy_saving: 0.8,
            qoe_degradation: 0.0,
            rebuffer_seconds: Seconds::zero(),
            switches: 0,
        };
        assert!((m.saving_over_degradation() - 300.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "Youtube baseline")]
    fn comparison_requires_youtube() {
        let runner = ExperimentRunner::paper();
        let s = vehicle_session(4);
        let approaches = [Approach::Festive];
        let results = vec![runner.run(&s, &Approach::Festive)];
        let _ = TraceComparison::from_results("x", Joules::new(1.0), &approaches, &results);
    }
}
