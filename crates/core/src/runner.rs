//! The experiment runner: approaches × traces, optionally in parallel.

use ecas_abr::InstrumentedBox;
use ecas_obs::{names, Probe, SpanGuard};
use ecas_sim::controller::FixedLevel;
use ecas_sim::events::EventLog;
use ecas_sim::result::SessionResult;
use ecas_sim::Simulator;
use ecas_trace::session::SessionTrace;
use ecas_types::ladder::{BitrateLadder, LevelIndex};
use ecas_types::units::Joules;

use crate::approach::Approach;
use crate::sweep::{ExecPolicy, SweepEngine};

/// Runs approaches over sessions with a shared simulator configuration.
///
/// # Examples
///
/// ```
/// use ecas_core::{Approach, ExecPolicy, ExperimentRunner};
/// use ecas_core::trace::videos::EvalTraceSpec;
///
/// let sessions: Vec<_> = EvalTraceSpec::table_v()[..2]
///     .iter()
///     .map(|s| s.generate())
///     .collect();
/// let runner = ExperimentRunner::paper();
/// let grid = runner.run_grid(&sessions, &Approach::paper_set(), &ExecPolicy::parallel());
/// assert_eq!(grid.len(), 2 * 5);
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    simulator: Simulator,
    eta: f64,
}

impl ExperimentRunner {
    /// Creates a runner around an explicit simulator.
    #[must_use]
    pub fn new(simulator: Simulator, eta: f64) -> Self {
        assert!((0.0..=1.0).contains(&eta), "eta must be in [0, 1]");
        Self { simulator, eta }
    }

    /// The paper's evaluation setup: 14-level ladder, τ = 2 s, B = 30 s,
    /// η = 0.5.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(Simulator::paper(BitrateLadder::evaluation()), 0.5)
    }

    /// The paper setup with a custom `η` (Pareto sweeps).
    #[must_use]
    pub fn paper_with_eta(eta: f64) -> Self {
        Self::new(Simulator::paper(BitrateLadder::evaluation()), eta)
    }

    /// The underlying simulator.
    #[must_use]
    pub fn simulator(&self) -> &Simulator {
        &self.simulator
    }

    /// The Eq. (11) weighting factor in use.
    #[must_use]
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Runs one approach on one session.
    #[must_use]
    pub fn run(&self, session: &SessionTrace, approach: &Approach) -> SessionResult {
        let mut controller = approach.controller_with_eta(&self.simulator, session, self.eta);
        self.simulator.run(session, controller.as_mut())
    }

    /// Like [`Self::run`] but instrumented: the whole run is timed under a
    /// `core/run` span, the controller is wrapped so every decision is
    /// timed under `abr/decide/<name>`, the simulator streams its events
    /// and metrics into `probe`, and the session's [`EventLog`] is
    /// returned alongside the result.
    #[must_use]
    pub fn run_with_probe(
        &self,
        session: &SessionTrace,
        approach: &Approach,
        probe: &dyn Probe,
    ) -> (SessionResult, EventLog) {
        let _run_span = SpanGuard::new(probe, names::CORE_RUN_SPAN);
        let controller = approach.controller_with_eta(&self.simulator, session, self.eta);
        let mut instrumented = InstrumentedBox::new(controller, probe);
        self.simulator
            .run_logged_with_probe(session, &mut instrumented, probe)
    }

    /// Runs every `(session, approach)` pair under `policy`, returning
    /// results in `sessions`-major order regardless of the policy — the
    /// single grid API (sequential, pooled and cached execution all live
    /// in [`SweepEngine`]; this is sugar for the common case).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics under
    /// [`ExecPolicy::Parallel`].
    #[must_use]
    pub fn run_grid(
        &self,
        sessions: &[SessionTrace],
        approaches: &[Approach],
        policy: &ExecPolicy,
    ) -> Vec<SessionResult> {
        SweepEngine::new(self.clone()).run_grid(sessions, approaches, policy)
    }

    /// Runs every `(session, approach)` pair across worker threads.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    #[deprecated(
        since = "0.1.0",
        note = "use run_grid(sessions, approaches, &ExecPolicy::parallel())"
    )]
    #[must_use]
    pub fn run_grid_parallel(
        &self,
        sessions: &[SessionTrace],
        approaches: &[Approach],
    ) -> Vec<SessionResult> {
        self.run_grid(sessions, approaches, &ExecPolicy::parallel())
    }

    /// The session's *base energy* (Fig. 5c): the energy of streaming
    /// every segment at the lowest bitrate — the minimum possible
    /// consumption, covering the screen plus minimal transmission and
    /// processing.
    #[must_use]
    pub fn base_energy(&self, session: &SessionTrace) -> Joules {
        let mut lowest = FixedLevel::new(LevelIndex::new(0));
        self.simulator.run(session, &mut lowest).total_energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_trace::videos::EvalTraceSpec;

    fn short_session() -> SessionTrace {
        use ecas_trace::synth::context::{Context, ContextSchedule};
        use ecas_trace::synth::SessionGenerator;
        use ecas_types::units::Seconds;
        SessionGenerator::new(
            "core-test",
            ContextSchedule::constant(Context::MovingVehicle),
            Seconds::new(60.0),
            21,
        )
        .generate()
    }

    #[test]
    fn run_produces_labeled_results() {
        let runner = ExperimentRunner::paper();
        let s = short_session();
        let r = runner.run(&s, &Approach::Festive);
        assert_eq!(r.controller, "festive");
        assert_eq!(r.trace, "core-test");
    }

    #[test]
    fn grid_order_is_sessions_major() {
        let runner = ExperimentRunner::paper();
        let sessions = vec![short_session()];
        let approaches = [Approach::Youtube, Approach::Bba];
        let grid = runner.run_grid(&sessions, &approaches, &ExecPolicy::Sequential);
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].controller, "youtube");
        assert_eq!(grid[1].controller, "bba");
    }

    #[test]
    fn parallel_grid_matches_sequential() {
        let runner = ExperimentRunner::paper();
        let sessions = vec![short_session(), EvalTraceSpec::table_v()[0].generate()];
        let approaches = [Approach::Youtube, Approach::Ours, Approach::Optimal];
        let seq = runner.run_grid(&sessions, &approaches, &ExecPolicy::Sequential);
        let par = runner.run_grid(&sessions, &approaches, &ExecPolicy::parallel());
        assert_eq!(seq, par);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_parallel_shim_still_works() {
        let runner = ExperimentRunner::paper();
        let sessions = vec![short_session()];
        let approaches = [Approach::Youtube, Approach::Ours];
        let shim = runner.run_grid_parallel(&sessions, &approaches);
        assert_eq!(
            shim,
            runner.run_grid(&sessions, &approaches, &ExecPolicy::Sequential)
        );
    }

    #[test]
    fn probed_run_matches_plain_run() {
        let runner = ExperimentRunner::paper();
        let s = short_session();
        let recorder = ecas_obs::MemoryRecorder::new();
        let (probed, log) = runner.run_with_probe(&s, &Approach::Ours, &recorder);
        let plain = runner.run(&s, &Approach::Ours);
        assert_eq!(probed, plain);
        assert_eq!(recorder.events().len(), log.len());
        let snap = recorder.metrics().snapshot();
        assert_eq!(snap.span("core/run").unwrap().count, 1);
        assert!(snap.span("abr/decide/ours").unwrap().count >= log.decisions().len() as u64);
    }

    #[test]
    fn base_energy_below_all_approaches() {
        let runner = ExperimentRunner::paper();
        let s = short_session();
        let base = runner.base_energy(&s);
        for a in Approach::paper_set() {
            let r = runner.run(&s, &a);
            assert!(
                r.total_energy() >= base,
                "{} used less than base energy",
                a.label()
            );
        }
    }
}
