//! The registry of evaluated approaches (Section V-A).

use ecas_abr::{
    AdaptiveEta, Bba, Bola, Festive, Mpc, Online, OptimalPlanner, Pid, PlannedController, RateBased,
};
use ecas_sim::controller::{BitrateController, FixedLevel};
use ecas_sim::Simulator;
use ecas_trace::session::SessionTrace;
use serde::{Deserialize, Serialize};

/// One of the evaluated bitrate-adaptation approaches.
///
/// The paper compares the first five; [`Approach::Bola`] and
/// [`Approach::Mpc`] are related-work extensions used in ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Approach {
    /// The original YouTube app: every segment at the ladder maximum.
    Youtube,
    /// FESTIVE (ref \[2\]): throughput-based, harmonic-mean estimate.
    Festive,
    /// BBA (ref \[24\]): buffer-based with a linear buffer→rate map.
    Bba,
    /// The paper's online bitrate selection algorithm (Algorithm 1).
    Ours,
    /// The optimal shortest-path plan (requires the full trace).
    Optimal,
    /// BOLA (ref \[5\]), extension.
    Bola,
    /// Simplified MPC (ref \[17\]), extension.
    Mpc,
    /// PID buffer controller (ref \[4\]), extension.
    Pid,
    /// Last-sample rate matching (strawman), extension.
    RateBased,
    /// Algorithm 1 with vibration-modulated η (our extension).
    AdaptiveEta,
}

impl Approach {
    /// The five approaches of the paper's evaluation, in figure order.
    #[must_use]
    pub fn paper_set() -> [Approach; 5] {
        [
            Approach::Youtube,
            Approach::Festive,
            Approach::Bba,
            Approach::Ours,
            Approach::Optimal,
        ]
    }

    /// All implemented approaches (paper set + extensions).
    #[must_use]
    pub fn all() -> [Approach; 10] {
        [
            Approach::Youtube,
            Approach::Festive,
            Approach::Bba,
            Approach::Ours,
            Approach::Optimal,
            Approach::Bola,
            Approach::Mpc,
            Approach::Pid,
            Approach::RateBased,
            Approach::AdaptiveEta,
        ]
    }

    /// The display name used in figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Approach::Youtube => "Youtube",
            Approach::Festive => "FESTIVE",
            Approach::Bba => "BBA",
            Approach::Ours => "Ours",
            Approach::Optimal => "Optimal",
            Approach::Bola => "BOLA",
            Approach::Mpc => "MPC",
            Approach::Pid => "PID",
            Approach::RateBased => "Rate",
            Approach::AdaptiveEta => "Adaptive",
        }
    }

    /// Whether the approach needs full future knowledge (only `Optimal`).
    #[must_use]
    pub fn is_offline(&self) -> bool {
        matches!(self, Approach::Optimal)
    }

    /// Instantiates the controller for one session. `Optimal` plans
    /// against the session trace first; every other approach is online and
    /// ignores `session`.
    #[must_use]
    pub fn controller(
        &self,
        simulator: &Simulator,
        session: &SessionTrace,
    ) -> Box<dyn BitrateController> {
        self.controller_with_eta(simulator, session, 0.5)
    }

    /// Like [`Self::controller`] but with an explicit Eq. (11) `η` for the
    /// context-aware approaches (ignored by the baselines).
    #[must_use]
    pub fn controller_with_eta(
        &self,
        simulator: &Simulator,
        session: &SessionTrace,
        eta: f64,
    ) -> Box<dyn BitrateController> {
        match self {
            Approach::Youtube => Box::new(FixedLevel::highest()),
            Approach::Festive => Box::new(Festive::new()),
            Approach::Bba => Box::new(Bba::new()),
            Approach::Ours => Box::new(Online::with_eta(eta)),
            Approach::Optimal => {
                let planner = OptimalPlanner::with_eta(simulator.ladder().clone(), eta);
                let plan = planner.plan(session);
                Box::new(PlannedController::new(&plan))
            }
            Approach::Bola => Box::new(Bola::new()),
            Approach::Mpc => Box::new(Mpc::new()),
            Approach::Pid => Box::new(Pid::new()),
            Approach::RateBased => Box::new(RateBased::new()),
            Approach::AdaptiveEta => Box::new(AdaptiveEta::new()),
        }
    }
}

impl std::fmt::Display for Approach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_trace::videos::EvalTraceSpec;
    use ecas_types::ladder::BitrateLadder;

    #[test]
    fn paper_set_order_matches_figures() {
        let labels: Vec<_> = Approach::paper_set().iter().map(Approach::label).collect();
        assert_eq!(labels, ["Youtube", "FESTIVE", "BBA", "Ours", "Optimal"]);
    }

    #[test]
    fn only_optimal_is_offline() {
        for a in Approach::all() {
            assert_eq!(a.is_offline(), a == Approach::Optimal);
        }
    }

    #[test]
    fn controllers_instantiate_and_name_themselves() {
        let session = EvalTraceSpec::table_v()[0].generate();
        let sim = Simulator::paper(BitrateLadder::evaluation());
        for a in Approach::all() {
            let c = a.controller(&sim, &session);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let a = Approach::Ours;
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(a, serde_json::from_str::<Approach>(&json).unwrap());
    }
}
