//! Energy-aware and context-aware video streaming — the public facade.
//!
//! This crate ties the reproduction together: the [`Approach`] registry
//! covers every algorithm compared in the paper, the
//! [`runner::ExperimentRunner`] replays them over session traces (in
//! parallel when asked), and [`metrics`] computes the exact quantities the
//! paper's Figures 5–7 report: whole-phone and extra-energy savings, QoE
//! degradation, and the energy-saving-over-QoE-degradation ratio.
//!
//! Sub-crates are re-exported under short names so a downstream user needs
//! only this crate (or the root `ecas` facade):
//!
//! * [`types`] — units, ladders, identifiers;
//! * [`trace`] — trace model + synthetic generators (Tables I, V);
//! * [`sensors`] — vibration estimation (Eq. 5);
//! * [`qoe`] — QoE models + subjective study + fitting (Table III);
//! * [`power`] — power models + validation (Fig. 1a, Table VI);
//! * [`net`] — bandwidth estimators;
//! * [`sim`] — the DASH player simulator;
//! * [`abr`] — all bitrate controllers (Algorithm 1, the optimal planner,
//!   FESTIVE, BBA, BOLA, MPC);
//! * [`obs`] — instrumentation: probes, metrics registry, run manifests.
//!
//! # Examples
//!
//! Reproduce the heart of the paper's evaluation — all five approaches on
//! a Table V trace:
//!
//! ```
//! use ecas_core::{Approach, ExperimentRunner};
//! use ecas_core::trace::videos::EvalTraceSpec;
//!
//! let session = EvalTraceSpec::table_v()[0].generate();
//! let runner = ExperimentRunner::paper();
//! let youtube = runner.run(&session, &Approach::Youtube);
//! let ours = runner.run(&session, &Approach::Ours);
//! assert!(ours.total_energy() < youtube.total_energy(), "ours saves energy");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approach;
pub mod corpus;
pub mod fleet;
pub mod metrics;
pub mod observe;
pub mod oracle;
mod pool;
pub mod record;
pub mod report;
pub mod robustness;
pub mod runner;
pub mod sweep;
pub mod viewer;

pub use approach::Approach;
pub use corpus::{CorpusDiff, CorpusIndex, CorpusOptions, VerifyOptions, VerifySummary};
pub use fleet::{FixedHistogram, FleetEngine, FleetReducer, FleetReport};
pub use metrics::{ComparisonSummary, TraceComparison};
pub use observe::{run_observed, run_observed_with};
pub use oracle::{Divergence, ObjectiveVerdict, Oracle, ReplayError, ReplayVerdict};
pub use record::{
    RecordManifest, RecordScenario, RecordedSession, SessionRecord, SessionRecordError,
};
pub use report::{render_markdown, Scenario, ScenarioBuilder, TraceSelection};
pub use robustness::{fault_sweep, table_v_robustness, FaultSweepCell, RobustnessRow, SeedStat};
pub use runner::ExperimentRunner;
pub use sweep::{CacheStats, ExecPolicy, SweepEngine};
pub use viewer::{expected_waste, quit_analysis, QuitAnalysis};

pub use ecas_abr as abr;
pub use ecas_net as net;
pub use ecas_obs as obs;
pub use ecas_power as power;
pub use ecas_qoe as qoe;
pub use ecas_sensors as sensors;
pub use ecas_sim as sim;
pub use ecas_trace as trace;
pub use ecas_types as types;
