//! Experiment configuration and report rendering.
//!
//! [`Scenario`] is a serializable description of an experiment (which
//! traces, which approaches, which η) that can be stored as JSON and
//! replayed; [`render_markdown`] turns a [`ComparisonSummary`] into a
//! paste-ready Markdown report.

use std::path::Path;

use ecas_sim::{FaultSpec, Simulator};
use ecas_trace::session::SessionTrace;
use ecas_trace::synth::context::{Context, ContextSchedule};
use ecas_trace::synth::SessionGenerator;
use ecas_trace::videos::EvalTraceSpec;
use ecas_types::ladder::BitrateLadder;
use ecas_types::units::Seconds;
use serde::{Deserialize, Serialize};

use crate::approach::Approach;
use crate::metrics::ComparisonSummary;
use crate::runner::ExperimentRunner;
use crate::sweep::{CacheStats, ExecPolicy, SweepEngine};

/// Where a scenario's session traces come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceSelection {
    /// The five Table V traces.
    TableV,
    /// A subset of Table V by 1-based id.
    TableVSubset(Vec<u8>),
    /// Synthetic single-context sessions.
    Synthetic {
        /// The watching context.
        context: Context,
        /// Session length in seconds.
        seconds: f64,
        /// Number of sessions (seeds `base_seed..base_seed + count`).
        count: u32,
        /// First RNG seed.
        base_seed: u64,
    },
}

impl TraceSelection {
    /// Materializes the session traces.
    ///
    /// # Panics
    ///
    /// Panics if a requested Table V id does not exist.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionTrace> {
        match self {
            TraceSelection::TableV => EvalTraceSpec::table_v()
                .iter()
                .map(EvalTraceSpec::generate)
                .collect(),
            TraceSelection::TableVSubset(ids) => {
                let specs = EvalTraceSpec::table_v();
                ids.iter()
                    .map(|id| {
                        specs
                            .iter()
                            .find(|s| s.id == *id)
                            // ecas-lint: allow(panic-safety, reason = "an unknown trace id is a caller bug in a fixed experiment spec; abort loudly")
                            .unwrap_or_else(|| panic!("no Table V trace with id {id}"))
                            .generate()
                    })
                    .collect()
            }
            TraceSelection::Synthetic {
                context,
                seconds,
                count,
                base_seed,
            } => (0..*count)
                .map(|i| {
                    SessionGenerator::new(
                        format!("{context}-{i}"),
                        ContextSchedule::constant(*context),
                        Seconds::new(*seconds),
                        base_seed + u64::from(i),
                    )
                    .generate()
                })
                .collect(),
        }
    }
}

/// A complete, replayable experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: String,
    /// The traces to replay.
    pub traces: TraceSelection,
    /// The approaches to compare.
    pub approaches: Vec<Approach>,
    /// The Eq. (11) weighting factor.
    pub eta: f64,
    /// Deterministic link faults to inject, if any.
    #[serde(default)]
    pub fault: Option<FaultSpec>,
    /// Result-cache directory (UTF-8 path) for [`Self::policy`], if any.
    #[serde(default)]
    pub cache_dir: Option<String>,
}

impl Scenario {
    /// The paper's evaluation: Table V × the five approaches at η = 0.5.
    #[must_use]
    pub fn paper_evaluation() -> Self {
        Self::builder("paper-evaluation").build()
    }

    /// Starts a builder with the paper defaults (Table V traces, the five
    /// paper approaches, η = 0.5, no faults, no cache).
    #[must_use]
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder::new(name)
    }

    /// The runner this scenario describes: the paper's simulator at the
    /// scenario's η, with the fault spec applied when present.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `[0, 1]`.
    #[must_use]
    pub fn runner(&self) -> ExperimentRunner {
        let mut simulator = Simulator::paper(BitrateLadder::evaluation());
        if let Some(fault) = self.fault {
            simulator = simulator.with_faults(fault);
        }
        ExperimentRunner::new(simulator, self.eta)
    }

    /// The default execution policy: an auto-sized pool, wrapped in a
    /// cache when [`Self::cache_dir`] is set.
    #[must_use]
    pub fn policy(&self) -> ExecPolicy {
        ExecPolicy::from_options(None, self.cache_dir.as_deref().map(Path::new))
    }

    /// Runs the scenario under its default [`Self::policy`].
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `[0, 1]` or the approach list omits the
    /// Youtube baseline (required by the comparison metrics).
    #[must_use]
    pub fn run(&self) -> ComparisonSummary {
        self.run_with(&self.policy()).0
    }

    /// Runs the scenario under an explicit policy, returning the summary
    /// together with the cache statistics of the run (all-zero when the
    /// policy does not cache).
    ///
    /// # Panics
    ///
    /// Panics on the same invalid inputs as [`Self::run`].
    #[must_use]
    pub fn run_with(&self, policy: &ExecPolicy) -> (ComparisonSummary, CacheStats) {
        let engine = SweepEngine::new(self.runner());
        let sessions = self.traces.sessions();
        let summary = engine.comparison(&sessions, &self.approaches, policy);
        (summary, engine.stats())
    }
}

/// Builds a [`Scenario`] without struct literals or JSON round-trips.
///
/// # Examples
///
/// ```
/// use ecas_core::{Approach, Scenario, TraceSelection};
///
/// let scenario = Scenario::builder("eta-sweep")
///     .traces(TraceSelection::TableVSubset(vec![1]))
///     .approaches(vec![Approach::Youtube, Approach::Ours])
///     .eta(0.7)
///     .build();
/// assert_eq!(scenario.eta, 0.7);
/// assert!(scenario.fault.is_none());
/// ```
#[derive(Debug, Clone)]
// ecas-lint: allow(pub-surface, reason = "re-exported scenario surface; used by integration tests and future experiment scripts")
pub struct ScenarioBuilder {
    name: String,
    traces: TraceSelection,
    approaches: Vec<Approach>,
    eta: f64,
    fault: Option<FaultSpec>,
    cache_dir: Option<String>,
}

impl ScenarioBuilder {
    fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            traces: TraceSelection::TableV,
            approaches: Approach::paper_set().to_vec(),
            eta: 0.5,
            fault: None,
            cache_dir: None,
        }
    }

    /// Sets the trace selection (default: the five Table V traces).
    #[must_use]
    pub fn traces(mut self, traces: TraceSelection) -> Self {
        self.traces = traces;
        self
    }

    /// Sets the approach list (default: the paper's five).
    #[must_use]
    pub fn approaches(mut self, approaches: Vec<Approach>) -> Self {
        self.approaches = approaches;
        self
    }

    /// Sets the Eq. (11) weighting factor (default: 0.5).
    #[must_use]
    pub fn eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Injects deterministic link faults (default: none).
    #[must_use]
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Enables result caching under `dir` for [`Scenario::policy`]
    /// (default: no cache).
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<String>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Finalizes the scenario.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `[0, 1]` or the approach list is empty.
    #[must_use]
    pub fn build(self) -> Scenario {
        assert!(
            (0.0..=1.0).contains(&self.eta),
            "eta must be in [0, 1], got {}",
            self.eta
        );
        assert!(
            !self.approaches.is_empty(),
            "a scenario needs at least one approach"
        );
        Scenario {
            name: self.name,
            traces: self.traces,
            approaches: self.approaches,
            eta: self.eta,
            fault: self.fault,
            cache_dir: self.cache_dir,
        }
    }
}

/// Renders a comparison summary as a Markdown report.
#[must_use]
pub fn render_markdown(title: &str, summary: &ComparisonSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n\n"));

    out.push_str("## Energy per trace (J)\n\n| trace |");
    let approaches: Vec<Approach> = summary
        .traces
        .first()
        .map(|t| t.approaches.iter().map(|m| m.approach).collect())
        .unwrap_or_default();
    for a in &approaches {
        out.push_str(&format!(" {} |", a.label()));
    }
    out.push_str("\n|---|");
    for _ in &approaches {
        out.push_str("---|");
    }
    out.push('\n');
    for t in &summary.traces {
        out.push_str(&format!("| {} |", t.trace));
        for m in &t.approaches {
            out.push_str(&format!(" {:.0} |", m.energy.value()));
        }
        out.push('\n');
    }

    out.push_str("\n## Mean metrics\n\n");
    out.push_str("| approach | QoE | energy saving | extra saving | QoE degradation |\n");
    out.push_str("|---|---|---|---|---|\n");
    for a in &approaches {
        out.push_str(&format!(
            "| {} | {:.2} | {:.1}% | {:.1}% | {:.2}% |\n",
            a.label(),
            summary.mean_qoe(*a),
            100.0 * summary.mean_energy_saving(*a),
            100.0 * summary.mean_extra_energy_saving(*a),
            100.0 * summary.mean_qoe_degradation(*a),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_selection_generates_count_sessions() {
        let sel = TraceSelection::Synthetic {
            context: Context::Walking,
            seconds: 30.0,
            count: 3,
            base_seed: 7,
        };
        let sessions = sel.sessions();
        assert_eq!(sessions.len(), 3);
        assert_eq!(sessions[0].meta().name, "walking-0");
        assert_ne!(sessions[0], sessions[1]);
    }

    #[test]
    fn table_v_subset_selects_by_id() {
        let sel = TraceSelection::TableVSubset(vec![2, 5]);
        let sessions = sel.sessions();
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].meta().name, "trace2");
        assert_eq!(sessions[1].meta().name, "trace5");
    }

    #[test]
    #[should_panic(expected = "no Table V trace")]
    fn unknown_id_panics() {
        let _ = TraceSelection::TableVSubset(vec![9]).sessions();
    }

    #[test]
    fn scenario_roundtrips_through_json() {
        let s = Scenario::paper_evaluation();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(s, serde_json::from_str::<Scenario>(&json).unwrap());
    }

    #[test]
    fn scenario_runs_and_renders() {
        let scenario = Scenario::builder("smoke")
            .traces(TraceSelection::Synthetic {
                context: Context::MovingVehicle,
                seconds: 40.0,
                count: 1,
                base_seed: 3,
            })
            .approaches(vec![Approach::Youtube, Approach::Ours])
            .build();
        let summary = scenario.run();
        let md = render_markdown("smoke", &summary);
        assert!(md.contains("# smoke"));
        assert!(md.contains("| Youtube |") || md.contains(" Youtube |"));
        assert!(md.contains("Ours"));
        assert!(md.lines().count() > 8);
    }

    #[test]
    fn builder_defaults_match_paper_evaluation() {
        let built = Scenario::builder("paper-evaluation").build();
        assert_eq!(built, Scenario::paper_evaluation());
        assert_eq!(built.traces, TraceSelection::TableV);
        assert_eq!(built.approaches, Approach::paper_set().to_vec());
        assert!(built.policy().cache_dir().is_none());
    }

    #[test]
    #[should_panic(expected = "eta must be in [0, 1]")]
    fn builder_rejects_out_of_range_eta() {
        let _ = Scenario::builder("bad").eta(1.5).build();
    }

    #[test]
    fn scenario_with_cache_dir_runs_warm_on_second_pass() {
        let dir = std::env::temp_dir().join(format!(
            "ecas-report-cache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let scenario = Scenario::builder("cached-smoke")
            .traces(TraceSelection::Synthetic {
                context: Context::Walking,
                seconds: 30.0,
                count: 1,
                base_seed: 9,
            })
            .approaches(vec![Approach::Youtube, Approach::Ours])
            .cache_dir(dir.to_string_lossy().into_owned())
            .build();
        assert_eq!(scenario.policy().cache_dir(), Some(dir.as_path()));

        let (cold, cold_stats) = scenario.run_with(&scenario.policy());
        // One base-energy cell + two approach cells.
        assert_eq!(cold_stats.misses, 3);
        let (warm, warm_stats) = scenario.run_with(&scenario.policy());
        assert_eq!(warm, cold);
        assert!(warm_stats.all_hits(), "{warm_stats:?}");
        assert_eq!(warm_stats.hits, 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
