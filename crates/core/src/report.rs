//! Experiment configuration and report rendering.
//!
//! [`Scenario`] is a serializable description of an experiment (which
//! traces, which approaches, which η) that can be stored as JSON and
//! replayed; [`render_markdown`] turns a [`ComparisonSummary`] into a
//! paste-ready Markdown report.

use ecas_trace::session::SessionTrace;
use ecas_trace::synth::context::{Context, ContextSchedule};
use ecas_trace::synth::SessionGenerator;
use ecas_trace::videos::EvalTraceSpec;
use ecas_types::units::Seconds;
use serde::{Deserialize, Serialize};

use crate::approach::Approach;
use crate::metrics::ComparisonSummary;
use crate::runner::ExperimentRunner;

/// Where a scenario's session traces come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceSelection {
    /// The five Table V traces.
    TableV,
    /// A subset of Table V by 1-based id.
    TableVSubset(Vec<u8>),
    /// Synthetic single-context sessions.
    Synthetic {
        /// The watching context.
        context: Context,
        /// Session length in seconds.
        seconds: f64,
        /// Number of sessions (seeds `base_seed..base_seed + count`).
        count: u32,
        /// First RNG seed.
        base_seed: u64,
    },
}

impl TraceSelection {
    /// Materializes the session traces.
    ///
    /// # Panics
    ///
    /// Panics if a requested Table V id does not exist.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionTrace> {
        match self {
            TraceSelection::TableV => EvalTraceSpec::table_v()
                .iter()
                .map(EvalTraceSpec::generate)
                .collect(),
            TraceSelection::TableVSubset(ids) => {
                let specs = EvalTraceSpec::table_v();
                ids.iter()
                    .map(|id| {
                        specs
                            .iter()
                            .find(|s| s.id == *id)
                            // ecas-lint: allow(panic-safety, reason = "an unknown trace id is a caller bug in a fixed experiment spec; abort loudly")
                            .unwrap_or_else(|| panic!("no Table V trace with id {id}"))
                            .generate()
                    })
                    .collect()
            }
            TraceSelection::Synthetic {
                context,
                seconds,
                count,
                base_seed,
            } => (0..*count)
                .map(|i| {
                    SessionGenerator::new(
                        format!("{context}-{i}"),
                        ContextSchedule::constant(*context),
                        Seconds::new(*seconds),
                        base_seed + u64::from(i),
                    )
                    .generate()
                })
                .collect(),
        }
    }
}

/// A complete, replayable experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: String,
    /// The traces to replay.
    pub traces: TraceSelection,
    /// The approaches to compare.
    pub approaches: Vec<Approach>,
    /// The Eq. (11) weighting factor.
    pub eta: f64,
}

impl Scenario {
    /// The paper's evaluation: Table V × the five approaches at η = 0.5.
    #[must_use]
    pub fn paper_evaluation() -> Self {
        Self {
            name: "paper-evaluation".to_string(),
            traces: TraceSelection::TableV,
            approaches: Approach::paper_set().to_vec(),
            eta: 0.5,
        }
    }

    /// Runs the scenario.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `[0, 1]` or the approach list omits the
    /// Youtube baseline (required by the comparison metrics).
    #[must_use]
    pub fn run(&self) -> ComparisonSummary {
        let runner = ExperimentRunner::paper_with_eta(self.eta);
        let sessions = self.traces.sessions();
        ComparisonSummary::evaluate(&runner, &sessions, &self.approaches)
    }
}

/// Renders a comparison summary as a Markdown report.
#[must_use]
pub fn render_markdown(title: &str, summary: &ComparisonSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n\n"));

    out.push_str("## Energy per trace (J)\n\n| trace |");
    let approaches: Vec<Approach> = summary
        .traces
        .first()
        .map(|t| t.approaches.iter().map(|m| m.approach).collect())
        .unwrap_or_default();
    for a in &approaches {
        out.push_str(&format!(" {} |", a.label()));
    }
    out.push_str("\n|---|");
    for _ in &approaches {
        out.push_str("---|");
    }
    out.push('\n');
    for t in &summary.traces {
        out.push_str(&format!("| {} |", t.trace));
        for m in &t.approaches {
            out.push_str(&format!(" {:.0} |", m.energy.value()));
        }
        out.push('\n');
    }

    out.push_str("\n## Mean metrics\n\n");
    out.push_str("| approach | QoE | energy saving | extra saving | QoE degradation |\n");
    out.push_str("|---|---|---|---|---|\n");
    for a in &approaches {
        out.push_str(&format!(
            "| {} | {:.2} | {:.1}% | {:.1}% | {:.2}% |\n",
            a.label(),
            summary.mean_qoe(*a),
            100.0 * summary.mean_energy_saving(*a),
            100.0 * summary.mean_extra_energy_saving(*a),
            100.0 * summary.mean_qoe_degradation(*a),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_selection_generates_count_sessions() {
        let sel = TraceSelection::Synthetic {
            context: Context::Walking,
            seconds: 30.0,
            count: 3,
            base_seed: 7,
        };
        let sessions = sel.sessions();
        assert_eq!(sessions.len(), 3);
        assert_eq!(sessions[0].meta().name, "walking-0");
        assert_ne!(sessions[0], sessions[1]);
    }

    #[test]
    fn table_v_subset_selects_by_id() {
        let sel = TraceSelection::TableVSubset(vec![2, 5]);
        let sessions = sel.sessions();
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].meta().name, "trace2");
        assert_eq!(sessions[1].meta().name, "trace5");
    }

    #[test]
    #[should_panic(expected = "no Table V trace")]
    fn unknown_id_panics() {
        let _ = TraceSelection::TableVSubset(vec![9]).sessions();
    }

    #[test]
    fn scenario_roundtrips_through_json() {
        let s = Scenario::paper_evaluation();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(s, serde_json::from_str::<Scenario>(&json).unwrap());
    }

    #[test]
    fn scenario_runs_and_renders() {
        let scenario = Scenario {
            name: "smoke".to_string(),
            traces: TraceSelection::Synthetic {
                context: Context::MovingVehicle,
                seconds: 40.0,
                count: 1,
                base_seed: 3,
            },
            approaches: vec![Approach::Youtube, Approach::Ours],
            eta: 0.5,
        };
        let summary = scenario.run();
        let md = render_markdown("smoke", &summary);
        assert!(md.contains("# smoke"));
        assert!(md.contains("| Youtube |") || md.contains(" Youtube |"));
        assert!(md.contains("Ours"));
        assert!(md.lines().count() > 8);
    }
}
