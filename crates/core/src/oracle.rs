//! The session replay oracle: independent reconstruction of a
//! [`SessionResult`] from its [`EventLog`], plus a differential check of
//! the online algorithm against the shortest-path optimal.
//!
//! The simulator's download loop is a few hundred lines of interleaved
//! accounting — buffer, stalls, per-attempt radio integration, RRC tails,
//! retry bookkeeping. A bug in any of it silently skews every figure the
//! reproduction reports. This module is the cross-check: [`Oracle::replay`]
//! rebuilds the whole result *from the event log alone* — using only event
//! timestamps, the trace, and the power/QoE models, never the simulator's
//! internal state — and [`Oracle::check_replay`] diffs the reconstruction
//! against the simulator's own answer field by field. The two
//! implementations share the models but not the control flow, so an
//! accounting bug has to be made twice, in two different shapes, to slip
//! through.
//!
//! On top of the replay identity the oracle enforces the accounting
//! invariants documented in `DESIGN.md` § 9 (wall-clock decomposition,
//! energy breakdown totals, wasted ⊆ radio, counter/event agreement) and a
//! *differential* optimality bound: [`Oracle::check_objective`] asserts
//! that the Eq. (11) objective of any realized level sequence is never
//! better than the shortest-path optimum on the same session — the
//! defining property of [`ecas_abr::OptimalPlanner`].
//!
//! The `oracle_fuzz` bench binary drives both checks over randomized
//! scenarios (configs × synthetic traces × fault specs) and shrinks any
//! failure to a minimal reproducer.
//!
//! # Examples
//!
//! ```
//! use ecas_core::oracle::{Oracle, ReplayVerdict};
//! use ecas_core::{Approach, ExperimentRunner};
//! use ecas_core::trace::videos::EvalTraceSpec;
//! use ecas_obs::NULL_PROBE;
//!
//! let session = EvalTraceSpec::table_v()[0].generate();
//! let runner = ExperimentRunner::paper();
//! let (result, log) = runner.run_with_probe(&session, &Approach::Ours, &NULL_PROBE);
//! let oracle = Oracle::new(runner.simulator(), runner.eta());
//! let verdict = oracle.check_replay(&session, &result, Some(&log));
//! assert!(verdict.is_pass(), "{}", verdict.render());
//! let objective = oracle.check_objective(&session, &result).unwrap();
//! assert!(objective.holds(), "{}", objective.render());
//! ```

use ecas_abr::{ObjectiveWeights, OptimalPlanner};
use ecas_obs::{names, Probe, NULL_PROBE};
use ecas_power::task::TaskEnergyModel;
use ecas_sim::radio;
use ecas_sim::{EnergyBreakdown, EventLog, FaultPlan, SessionEvent, SessionResult, Simulator, TaskRecord};
use ecas_trace::session::SessionTrace;
use ecas_types::ids::TaskId;
use ecas_types::ladder::LevelIndex;
use ecas_types::units::{Dbm, Joules, Mbps, MegaBytes, MetersPerSec2, QoeScore, Seconds};

/// Relative tolerance for replay/reference float comparisons.
///
/// The reconstruction reuses the simulator's exact chunking for radio
/// integration, so most energy fields agree bit-for-bit; the tolerance
/// absorbs the few fields (decode slivers at segment boundaries, stall
/// sums vs. interval arithmetic) where the two computations order their
/// floating-point additions differently.
pub(crate) const REPLAY_TOLERANCE: f64 = 1e-9;

/// Relative tolerance for the wall-clock decomposition identity
/// (`wall = startup + played + rebuffer`), whose three right-hand terms
/// each accumulate their own rounding across every advance of the clock.
pub(crate) const WALL_IDENTITY_TOLERANCE: f64 = 1e-6;

/// Slack granted to the online objective in the differential check:
/// `online + OBJECTIVE_TOLERANCE ≥ optimal` must hold (Eq. (11) is
/// minimized, so the optimal plan is a lower bound).
pub(crate) const OBJECTIVE_TOLERANCE: f64 = 1e-9;

/// A structurally broken event log (or a log that does not belong to the
/// session it was replayed against).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    message: String,
}

impl ReplayError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay error: {}", self.message)
    }
}

impl std::error::Error for ReplayError {}

/// One field where the replayed result disagrees with the simulator's.
#[derive(Debug, Clone, PartialEq, Eq)]
// ecas-lint: allow(pub-surface, reason = "re-exported oracle result type; part of the crate's published surface")
pub struct Divergence {
    /// Dotted path of the diverging field (e.g. `energy.radio`,
    /// `tasks[3].rebuffer`, `identity.wall_decomposition`).
    pub field: String,
    /// The simulator's value, rendered for display.
    pub reference: String,
    /// The value reconstructed from the event log.
    pub replayed: String,
    /// What the comparison measured (tolerance, counts, identity).
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: simulator {} vs replay {} ({})",
            self.field, self.reference, self.replayed, self.detail
        )
    }
}

/// The outcome of a replay check.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayVerdict {
    /// No event log was recorded for the session, so there is nothing to
    /// replay (the plain [`Simulator::run`] path). An explicit verdict —
    /// not a silent pass — so batch drivers can report coverage honestly.
    Skipped {
        /// Why the check could not run.
        reason: String,
    },
    /// Every comparison agreed within tolerance.
    Pass {
        /// Number of field comparisons and identities that were checked.
        checks: usize,
    },
    /// At least one field diverged (or the log was unreplayable).
    Fail {
        /// The diverging fields, in field order.
        divergences: Vec<Divergence>,
    },
}

impl ReplayVerdict {
    /// Whether the check ran and every comparison agreed.
    #[must_use]
    pub fn is_pass(&self) -> bool {
        matches!(self, ReplayVerdict::Pass { .. })
    }

    /// Whether the check ran and found a divergence.
    #[must_use]
    pub fn is_fail(&self) -> bool {
        matches!(self, ReplayVerdict::Fail { .. })
    }

    /// A human-readable summary (multi-line on failure).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            ReplayVerdict::Skipped { reason } => format!("replay skipped: {reason}"),
            ReplayVerdict::Pass { checks } => format!("replay pass ({checks} checks)"),
            ReplayVerdict::Fail { divergences } => {
                let mut out = format!("replay FAIL ({} divergences)", divergences.len());
                for d in divergences {
                    out.push_str("\n  ");
                    out.push_str(&d.to_string());
                }
                out
            }
        }
    }
}

/// The outcome of the differential objective check.
#[derive(Debug, Clone, Copy, PartialEq)]
// ecas-lint: allow(pub-surface, reason = "re-exported oracle result type; part of the crate's published surface")
pub struct ObjectiveVerdict {
    /// Eq. (11) objective of the realized (online) level sequence.
    pub online: f64,
    /// Objective of the shortest-path optimal plan for the same session.
    pub optimal: f64,
    /// Slack granted to the comparison ([`OBJECTIVE_TOLERANCE`]).
    pub tolerance: f64,
}

impl ObjectiveVerdict {
    /// Whether the optimality bound holds: the online objective is no
    /// better (no smaller) than the optimal one, within tolerance.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.online + self.tolerance >= self.optimal
    }

    /// A human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "objective {}: online {:.9} vs optimal {:.9}",
            if self.holds() { "pass" } else { "FAIL" },
            self.online,
            self.optimal
        )
    }
}

/// The replay checker: reconstructs sessions from event logs against a
/// simulator's configuration and models, and bounds realized objectives
/// by the shortest-path optimum.
#[derive(Debug, Clone, Copy)]
pub struct Oracle<'a> {
    simulator: &'a Simulator,
    eta: f64,
}

impl<'a> Oracle<'a> {
    /// Creates an oracle for `simulator` with the Eq. (11) weight `eta`
    /// used by the differential check.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `[0, 1]`.
    #[must_use]
    pub fn new(simulator: &'a Simulator, eta: f64) -> Self {
        assert!((0.0..=1.0).contains(&eta), "eta must be in [0, 1]");
        Self { simulator, eta }
    }

    /// Reconstructs a complete [`SessionResult`] from the event log alone.
    ///
    /// The reconstruction never consults the simulator's run loop: every
    /// quantity is derived from event timestamps, the session trace, and
    /// the shared power/QoE models. See `DESIGN.md` § 9 for the invariant
    /// each field rests on.
    ///
    /// The returned result carries `controller = "replay"`; the trace name
    /// comes from the session.
    ///
    /// # Errors
    ///
    /// Returns a [`ReplayError`] when the log is structurally invalid
    /// (unpaired events, out-of-order downloads, missing playback
    /// markers) or does not match the session's segment count.
    pub fn replay(
        &self,
        session: &SessionTrace,
        log: &EventLog,
    ) -> Result<SessionResult, ReplayError> {
        let config = self.simulator.config();
        let tau = config.segment_duration.value();
        let raw_len = session.meta().video_length.value();
        let n = (raw_len / tau).ceil() as usize;
        if n == 0 {
            return Err(ReplayError::new("session video is shorter than one segment"));
        }
        // The simulator rounds the video up to whole segments; mirror it.
        let video_len = n as f64 * tau;

        let parsed = parse_log(log)?;
        if parsed.tasks.len() != n {
            return Err(ReplayError::new(format!(
                "log contains {} downloads but the session has {} segments",
                parsed.tasks.len(),
                n
            )));
        }
        let playback_start = parsed
            .playback_start
            .ok_or_else(|| ReplayError::new("log has no PlaybackStart event"))?;
        let playback_end = parsed
            .playback_end
            .ok_or_else(|| ReplayError::new("log has no PlaybackEnd event"))?;

        // Same fault plan, same horizon as the simulator's run loop.
        let fault_plan: Option<FaultPlan> = self
            .simulator
            .faults()
            .filter(|spec| spec.is_active())
            .map(|spec| spec.plan(Seconds::new(video_len * 4.0 + 600.0)));
        let plan = fault_plan.as_ref();

        let policy = config.retry;
        let power = self.simulator.power();
        let ladder = self.simulator.ladder();
        let signal = session.signal();
        let tail_power = power.tail_power().value();
        let tail_window = power.tail_seconds().value();

        let mut tasks: Vec<TaskRecord> = Vec::with_capacity(n);
        let mut radio_total = 0.0_f64;
        let mut tail_total = 0.0_f64;
        let mut wasted_total = 0.0_f64;
        let mut decode_total = 0.0_f64;
        let mut downloaded_total = 0.0_f64;
        let mut switches = 0usize;
        let mut aborts_total = 0usize;
        let mut retries_total = 0usize;
        let mut degraded_total = 0usize;
        let mut prev_level: Option<LevelIndex> = None;
        let mut last_burst_end: Option<f64> = None;

        for task in &parsed.tasks {
            let ds = task.download_start;
            let de = task.download_end.ok_or_else(|| {
                ReplayError::new(format!("segment {} download never completed", task.segment))
            })?;
            if de < ds {
                return Err(ReplayError::new(format!(
                    "segment {} download ends before it starts",
                    task.segment
                )));
            }

            // RRC tail across the gap since the previous burst — gap
            // boundaries are exact event times, so this is bit-identical
            // to the simulator's accumulation.
            if config.radio_tail {
                if let Some(end) = last_burst_end {
                    let gap = (ds - end).max(0.0);
                    tail_total += tail_power * gap.min(tail_window);
                }
            }

            // Degradation: the simulator drops to the ladder floor at the
            // abort that exhausts the retry budget.
            let degraded = task
                .aborts
                .iter()
                .any(|&(_, attempt)| attempt >= policy.max_attempts);
            let level = if degraded {
                LevelIndex::new(0)
            } else {
                task.decided_level
            };
            if level.value() >= ladder.len() {
                return Err(ReplayError::new(format!(
                    "segment {} decided level {} outside the {}-level ladder",
                    task.segment,
                    level.value(),
                    ladder.len()
                )));
            }
            let bitrate = ladder.bitrate(level);
            let size = self
                .simulator
                .segment_sizes()
                .and_then(|table| table.get(task.segment, level))
                .unwrap_or_else(|| bitrate.data_over(config.segment_duration));

            // Radio energy: integrate each attempt window with the
            // simulator's exact chunking (network sample boundaries and
            // fault transitions), so per-attempt energies match
            // bit-for-bit.
            let mut task_radio = 0.0_f64;
            for window in attempt_windows(task, de)? {
                let attempt_energy =
                    self.radio_energy_between(session, plan, window.start, window.end)?;
                task_radio += attempt_energy;
                if window.wasted {
                    wasted_total += attempt_energy;
                }
            }
            aborts_total += task.aborts.len();
            retries_total += task.retries.len();
            if degraded {
                degraded_total += 1;
            }
            if config.radio_tail {
                for &(_, _, backoff) in &task.retries {
                    tail_total += tail_power * backoff.min(tail_window);
                }
            }

            // Rebuffer attributed to this task: stalls only ever run
            // inside download windows and end exactly when a download
            // refills the buffer, so interval overlap recovers the
            // simulator's per-task accounting.
            let rebuffer: f64 = parsed
                .stalls
                .iter()
                .map(|&(s, e)| (e.min(de) - s.max(ds)).max(0.0))
                .sum();

            let duration = (de - ds).max(1e-9);
            let observed = Mbps::new(size.value() * 8.0 / duration);
            let avg_signal = Dbm::new(
                0.5 * (signal.signal_at(Seconds::new(ds)).value()
                    + signal.signal_at(Seconds::new(de)).value()),
            );
            let prev_bitrate = prev_level.map(|l| ladder.bitrate(l));
            let qoe = self.simulator.qoe().segment_qoe(
                bitrate,
                task.vibration,
                prev_bitrate,
                Seconds::new(rebuffer),
            );
            if let Some(p) = prev_level {
                if p != level {
                    switches += 1;
                }
            }
            // Decode: each segment plays for exactly one segment duration.
            decode_total += power.decode_power(bitrate).value() * tau;
            downloaded_total += size.value();
            radio_total += task_radio;

            tasks.push(TaskRecord {
                task: TaskId::new(task.segment),
                level,
                bitrate,
                size,
                download_start: Seconds::new(ds),
                download_end: Seconds::new(de),
                throughput: observed,
                signal: avg_signal,
                vibration: task.vibration,
                rebuffer: Seconds::new(rebuffer),
                radio_energy: Joules::new(task_radio),
                qoe,
            });
            prev_level = Some(level);
            last_burst_end = Some(de);
        }

        // Final full-window tail after the last burst.
        if config.radio_tail && last_burst_end.is_some() {
            tail_total += tail_power * tail_window;
        }

        let wall = playback_end;
        let total_rebuffer: f64 = parsed.stalls.iter().map(|&(s, e)| e - s).sum();
        let outage_time = plan.map_or(0.0, |p| {
            p.outage_seconds_between(Seconds::zero(), Seconds::new(wall))
                .value()
        });
        let mean_qoe =
            QoeScore::new(tasks.iter().map(|t| t.qoe.value()).sum::<f64>() / n as f64);
        let energy = EnergyBreakdown {
            screen: Joules::new(power.screen_power().value() * wall),
            decode: Joules::new(decode_total),
            radio: Joules::new(radio_total),
            tail: Joules::new(tail_total),
        };

        Ok(SessionResult {
            controller: "replay".to_string(),
            trace: session.meta().name.clone(),
            tasks,
            energy,
            mean_qoe,
            total_rebuffer: Seconds::new(total_rebuffer),
            startup_delay: Seconds::new(playback_start),
            switches,
            played: Seconds::new(video_len),
            wall_time: Seconds::new(wall),
            downloaded: MegaBytes::new(downloaded_total),
            retries: retries_total,
            aborts: aborts_total,
            degraded_segments: degraded_total,
            outage_time: Seconds::new(outage_time),
            wasted_energy: Joules::new(wasted_total),
        })
    }

    /// Replays the log and diffs the reconstruction against the
    /// simulator's `reference` result, field by field, plus the § 9
    /// accounting identities on the reference itself.
    ///
    /// `log = None` yields [`ReplayVerdict::Skipped`] — an unlogged run
    /// (plain [`Simulator::run`]) has nothing to replay, and that absence
    /// is reported rather than silently passed.
    #[must_use]
    pub fn check_replay(
        &self,
        session: &SessionTrace,
        reference: &SessionResult,
        log: Option<&EventLog>,
    ) -> ReplayVerdict {
        self.check_replay_with_probe(session, reference, log, &NULL_PROBE)
    }

    /// [`Oracle::check_replay`], emitting one `oracle/replay_pass`,
    /// `oracle/replay_fail` or `oracle/replay_skip` counter into `probe`.
    #[must_use]
    pub fn check_replay_with_probe(
        &self,
        session: &SessionTrace,
        reference: &SessionResult,
        log: Option<&EventLog>,
        probe: &dyn Probe,
    ) -> ReplayVerdict {
        let verdict = match log {
            None => ReplayVerdict::Skipped {
                reason: "no event log was recorded for this session".to_string(),
            },
            Some(log) => match self.replay(session, log) {
                Ok(replayed) => diff_results(reference, &replayed),
                Err(e) => ReplayVerdict::Fail {
                    divergences: vec![Divergence {
                        field: "event-log".to_string(),
                        reference: "a replayable session log".to_string(),
                        replayed: e.to_string(),
                        detail: "the log could not be reconstructed at all".to_string(),
                    }],
                },
            },
        };
        let counter = match &verdict {
            ReplayVerdict::Skipped { .. } => names::ORACLE_REPLAY_SKIP,
            ReplayVerdict::Pass { .. } => names::ORACLE_REPLAY_PASS,
            ReplayVerdict::Fail { .. } => names::ORACLE_REPLAY_FAIL,
        };
        probe.add(counter, 1);
        verdict
    }

    /// The Eq. (11) objective of the shortest-path optimal plan for
    /// `session` under this oracle's models and η. Expensive (one
    /// Dijkstra); cache it when checking many approaches on one session
    /// via [`Oracle::check_objective_against`].
    #[must_use]
    pub fn optimal_objective(&self, session: &SessionTrace) -> f64 {
        self.planner().plan(session).objective
    }

    /// The Eq. (11) objective of the level sequence `result` realized.
    ///
    /// # Errors
    ///
    /// Returns a [`ReplayError`] when the result's task count does not
    /// match the session's segment count.
    pub fn realized_objective(
        &self,
        session: &SessionTrace,
        result: &SessionResult,
    ) -> Result<f64, ReplayError> {
        let tau = self.simulator.config().segment_duration.value();
        let n = (session.meta().video_length.value() / tau).ceil() as usize;
        if result.tasks.len() != n {
            return Err(ReplayError::new(format!(
                "result has {} tasks but the session has {} segments",
                result.tasks.len(),
                n
            )));
        }
        let levels: Vec<LevelIndex> = result.tasks.iter().map(|t| t.level).collect();
        Ok(self.planner().objective_of(session, &levels))
    }

    /// The differential check: the realized objective must be no better
    /// than the optimal one (Eq. (11) is minimized). Holds for *any*
    /// realized sequence — online decisions, baselines, even degraded
    /// fault-path levels — because the optimal plan minimizes over all
    /// level sequences of the same length.
    ///
    /// # Errors
    ///
    /// Returns a [`ReplayError`] when the result's task count does not
    /// match the session's segment count.
    pub fn check_objective(
        &self,
        session: &SessionTrace,
        result: &SessionResult,
    ) -> Result<ObjectiveVerdict, ReplayError> {
        let optimal = self.optimal_objective(session);
        self.check_objective_against(session, result, optimal)
    }

    /// [`Oracle::check_objective`] with a precomputed
    /// [`Oracle::optimal_objective`] (amortizes the Dijkstra across many
    /// approaches on the same session).
    ///
    /// # Errors
    ///
    /// Returns a [`ReplayError`] when the result's task count does not
    /// match the session's segment count.
    pub fn check_objective_against(
        &self,
        session: &SessionTrace,
        result: &SessionResult,
        optimal: f64,
    ) -> Result<ObjectiveVerdict, ReplayError> {
        let online = self.realized_objective(session, result)?;
        Ok(ObjectiveVerdict {
            online,
            optimal,
            tolerance: OBJECTIVE_TOLERANCE,
        })
    }

    /// [`Oracle::check_objective`], emitting one `oracle/objective_pass`
    /// or `oracle/objective_fail` counter into `probe`.
    ///
    /// # Errors
    ///
    /// Returns a [`ReplayError`] when the result's task count does not
    /// match the session's segment count (no counter is emitted).
    pub fn check_objective_with_probe(
        &self,
        session: &SessionTrace,
        result: &SessionResult,
        probe: &dyn Probe,
    ) -> Result<ObjectiveVerdict, ReplayError> {
        let verdict = self.check_objective(session, result)?;
        probe.add(
            if verdict.holds() {
                names::ORACLE_OBJECTIVE_PASS
            } else {
                names::ORACLE_OBJECTIVE_FAIL
            },
            1,
        );
        Ok(verdict)
    }

    /// The planner used by the differential check: the simulator's own
    /// models and config at this oracle's η.
    fn planner(&self) -> OptimalPlanner {
        let config = self.simulator.config();
        OptimalPlanner::new(
            ObjectiveWeights::new(self.eta),
            TaskEnergyModel::new(*self.simulator.power(), config.segment_duration),
            *self.simulator.qoe(),
            self.simulator.ladder().clone(),
            *config,
        )
    }

    /// Integrates radio power over `[start, end)` through the shared
    /// chunking kernel (`ecas_sim::radio`): a chunk ends at the next
    /// network sample time or fault transition, whichever comes first.
    /// Interior chunk boundaries in the simulator's download loop are
    /// exactly these times (attempt endpoints — completion, abort,
    /// timeout — are the window bounds themselves), so the sum reproduces
    /// the run's accumulation order bit-for-bit.
    fn radio_energy_between(
        &self,
        session: &SessionTrace,
        plan: Option<&FaultPlan>,
        start: f64,
        end: f64,
    ) -> Result<f64, ReplayError> {
        radio::integrate(
            session.network(),
            session.signal(),
            self.simulator.power(),
            plan,
            start,
            end,
        )
        .map(|out| out.energy)
        .map_err(|e| ReplayError::new(e.to_string()))
    }
}

/// One download attempt's wall-clock window within a task.
struct AttemptWindow {
    start: f64,
    end: f64,
    /// Aborted attempts: their radio energy is counted as wasted.
    wasted: bool,
}

/// Derives the per-attempt windows of a task from its abort/retry events:
/// attempt 1 starts at the download start; attempt `i + 1` starts when
/// attempt `i`'s backoff expires; the last attempt ends at the download
/// end, every earlier one at its abort.
fn attempt_windows(task: &ParsedTask, end: f64) -> Result<Vec<AttemptWindow>, ReplayError> {
    if task.retries.len() != task.aborts.len() {
        return Err(ReplayError::new(format!(
            "segment {}: {} aborts but {} retries (each abort must schedule a retry)",
            task.segment,
            task.aborts.len(),
            task.retries.len()
        )));
    }
    let mut windows = Vec::with_capacity(task.aborts.len() + 1);
    let mut start = task.download_start;
    for (&(abort_at, _), &(retry_at, _, backoff)) in task.aborts.iter().zip(&task.retries) {
        if abort_at < start - 1e-9 {
            return Err(ReplayError::new(format!(
                "segment {}: abort at {abort_at} precedes its attempt start {start}",
                task.segment
            )));
        }
        windows.push(AttemptWindow {
            start,
            end: abort_at,
            wasted: true,
        });
        start = retry_at + backoff;
    }
    windows.push(AttemptWindow {
        start,
        end,
        wasted: false,
    });
    Ok(windows)
}

/// One task's events, extracted in log order.
struct ParsedTask {
    segment: usize,
    decided_level: LevelIndex,
    vibration: MetersPerSec2,
    download_start: f64,
    download_end: Option<f64>,
    /// `(at, failed 1-based attempt)` per abort, in order.
    aborts: Vec<(f64, usize)>,
    /// `(at, next 1-based attempt, backoff seconds)` per retry, in order.
    retries: Vec<(f64, usize, f64)>,
}

/// The whole log, structurally validated.
struct ParsedLog {
    tasks: Vec<ParsedTask>,
    playback_start: Option<f64>,
    playback_end: Option<f64>,
    /// Closed stall intervals `(start, end)` in time order.
    stalls: Vec<(f64, f64)>,
}

/// Validates event structure (pairing, ordering, attempt numbering) and
/// groups events per task. Tolerates a single unterminated trailing
/// outage (an injected outage may outlive the session).
fn parse_log(log: &EventLog) -> Result<ParsedLog, ReplayError> {
    let mut tasks: Vec<ParsedTask> = Vec::new();
    let mut pending_decision: Option<(usize, LevelIndex, MetersPerSec2)> = None;
    let mut playback_start: Option<f64> = None;
    let mut playback_end: Option<f64> = None;
    let mut stalls: Vec<(f64, f64)> = Vec::new();
    let mut open_stall: Option<f64> = None;
    let mut outage_open = false;

    for event in log {
        match *event {
            SessionEvent::Decision {
                segment,
                level,
                vibration,
                ..
            } => {
                if pending_decision.is_some() {
                    return Err(ReplayError::new(format!(
                        "segment {}: decision with no download after the previous decision",
                        segment.value()
                    )));
                }
                if tasks.last().is_some_and(|t| t.download_end.is_none()) {
                    return Err(ReplayError::new(format!(
                        "segment {}: decision inside an open download",
                        segment.value()
                    )));
                }
                pending_decision = Some((segment.value(), level, vibration));
            }
            SessionEvent::DownloadStart { at, segment } => {
                let (seg, level, vibration) = pending_decision.take().ok_or_else(|| {
                    ReplayError::new(format!(
                        "segment {}: download started with no decision",
                        segment.value()
                    ))
                })?;
                if seg != segment.value() {
                    return Err(ReplayError::new(format!(
                        "download of segment {} follows a decision for segment {seg}",
                        segment.value()
                    )));
                }
                if segment.value() != tasks.len() {
                    return Err(ReplayError::new(format!(
                        "segment {} downloaded out of order (expected {})",
                        segment.value(),
                        tasks.len()
                    )));
                }
                tasks.push(ParsedTask {
                    segment: seg,
                    decided_level: level,
                    vibration,
                    download_start: at.value(),
                    download_end: None,
                    aborts: Vec::new(),
                    retries: Vec::new(),
                });
            }
            SessionEvent::DownloadAborted {
                at,
                segment,
                attempt,
                ..
            } => {
                let task = open_task(&mut tasks, segment.value(), "abort")?;
                if attempt != task.aborts.len() + 1 {
                    return Err(ReplayError::new(format!(
                        "segment {}: abort of attempt {attempt} after {} earlier aborts",
                        segment.value(),
                        task.aborts.len()
                    )));
                }
                if task.retries.len() != task.aborts.len() {
                    return Err(ReplayError::new(format!(
                        "segment {}: abort before the previous abort's retry",
                        segment.value()
                    )));
                }
                task.aborts.push((at.value(), attempt));
            }
            SessionEvent::Retry {
                at,
                segment,
                attempt,
                backoff,
            } => {
                let task = open_task(&mut tasks, segment.value(), "retry")?;
                if task.retries.len() + 1 != task.aborts.len() {
                    return Err(ReplayError::new(format!(
                        "segment {}: retry with no preceding abort",
                        segment.value()
                    )));
                }
                if attempt != task.aborts.len() + 1 {
                    return Err(ReplayError::new(format!(
                        "segment {}: retry numbered {attempt} after {} aborts",
                        segment.value(),
                        task.aborts.len()
                    )));
                }
                task.retries.push((at.value(), attempt, backoff.value()));
            }
            SessionEvent::DownloadEnd { at, segment, .. } => {
                let task = open_task(&mut tasks, segment.value(), "completion")?;
                if task.retries.len() != task.aborts.len() {
                    return Err(ReplayError::new(format!(
                        "segment {}: download ended between an abort and its retry",
                        segment.value()
                    )));
                }
                task.download_end = Some(at.value());
            }
            SessionEvent::PlaybackStart { at } => {
                if playback_start.is_some() {
                    return Err(ReplayError::new("duplicate PlaybackStart event"));
                }
                playback_start = Some(at.value());
            }
            SessionEvent::PlaybackEnd { at } => {
                if playback_end.is_some() {
                    return Err(ReplayError::new("duplicate PlaybackEnd event"));
                }
                playback_end = Some(at.value());
            }
            SessionEvent::StallStart { at } => {
                if open_stall.is_some() {
                    return Err(ReplayError::new("nested StallStart"));
                }
                open_stall = Some(at.value());
            }
            SessionEvent::StallEnd { at } => {
                let start = open_stall
                    .take()
                    .ok_or_else(|| ReplayError::new("StallEnd with no open stall"))?;
                stalls.push((start, at.value()));
            }
            SessionEvent::OutageStart { .. } => {
                if outage_open {
                    return Err(ReplayError::new("nested OutageStart"));
                }
                outage_open = true;
            }
            SessionEvent::OutageEnd { .. } => {
                if !outage_open {
                    return Err(ReplayError::new("OutageEnd with no open outage"));
                }
                outage_open = false;
            }
            SessionEvent::IdleWait { .. } | SessionEvent::Deferred { .. } => {}
        }
    }

    if pending_decision.is_some() {
        return Err(ReplayError::new("trailing decision with no download"));
    }
    if open_stall.is_some() {
        return Err(ReplayError::new("unterminated stall at end of log"));
    }
    // A trailing open outage is legal: the injected episode can outlive
    // the session, in which case its OutageEnd is never observed.
    Ok(ParsedLog {
        tasks,
        playback_start,
        playback_end,
        stalls,
    })
}

/// The task an abort/retry/completion event must belong to: the latest
/// download, still open, for the same segment.
fn open_task<'t>(
    // ecas-lint: allow(slice-indexing, reason = "slice type annotation, not an index expression")
    tasks: &'t mut [ParsedTask],
    segment: usize,
    what: &str,
) -> Result<&'t mut ParsedTask, ReplayError> {
    tasks
        .last_mut()
        .filter(|t| t.segment == segment && t.download_end.is_none())
        .ok_or_else(|| {
            ReplayError::new(format!("segment {segment}: {what} outside an open download"))
        })
}

/// Accumulates field comparisons into a verdict.
#[derive(Default)]
struct Diff {
    checks: usize,
    divergences: Vec<Divergence>,
}

impl Diff {
    /// Compares floats with a relative tolerance (absolute below 1.0).
    /// NaN on either side always diverges.
    fn float(&mut self, field: &str, reference: f64, replayed: f64, tolerance: f64) {
        self.checks += 1;
        let scale = reference.abs().max(replayed.abs()).max(1.0);
        let within = (replayed - reference).abs() <= tolerance * scale;
        if !within {
            self.divergences.push(Divergence {
                field: field.to_string(),
                reference: format!("{reference:?}"),
                replayed: format!("{replayed:?}"),
                detail: format!("tolerance {tolerance:?} at scale {scale:?}"),
            });
        }
    }

    /// Requires `value ≤ bound` within tolerance (one-sided identity).
    fn float_le(&mut self, field: &str, value: f64, bound: f64, tolerance: f64) {
        self.checks += 1;
        let scale = value.abs().max(bound.abs()).max(1.0);
        let within = value <= bound + tolerance * scale;
        if !within {
            self.divergences.push(Divergence {
                field: field.to_string(),
                reference: format!("≤ {bound:?}"),
                replayed: format!("{value:?}"),
                detail: format!("one-sided bound, tolerance {tolerance:?}"),
            });
        }
    }

    /// Exact count comparison.
    fn count(&mut self, field: &str, reference: usize, replayed: usize) {
        self.checks += 1;
        if reference != replayed {
            self.divergences.push(Divergence {
                field: field.to_string(),
                reference: reference.to_string(),
                replayed: replayed.to_string(),
                detail: "exact count".to_string(),
            });
        }
    }

    /// Exact string comparison.
    fn text(&mut self, field: &str, reference: &str, replayed: &str) {
        self.checks += 1;
        if reference != replayed {
            self.divergences.push(Divergence {
                field: field.to_string(),
                reference: reference.to_string(),
                replayed: replayed.to_string(),
                detail: "exact text".to_string(),
            });
        }
    }

    fn finish(self) -> ReplayVerdict {
        if self.divergences.is_empty() {
            ReplayVerdict::Pass {
                checks: self.checks,
            }
        } else {
            ReplayVerdict::Fail {
                divergences: self.divergences,
            }
        }
    }
}

/// Field-by-field diff of the simulator's result against the replayed
/// one, plus the accounting identities on the reference itself.
/// `pub(crate)` so the corpus `session diff` subsystem compares two
/// recorded references under exactly the oracle's tolerance and fields.
pub(crate) fn diff_results(reference: &SessionResult, replayed: &SessionResult) -> ReplayVerdict {
    let mut d = Diff::default();
    let tol = REPLAY_TOLERANCE;

    d.text("trace", &reference.trace, &replayed.trace);
    d.float("wall_time", reference.wall_time.value(), replayed.wall_time.value(), tol);
    d.float(
        "startup_delay",
        reference.startup_delay.value(),
        replayed.startup_delay.value(),
        tol,
    );
    d.float("played", reference.played.value(), replayed.played.value(), tol);
    d.float(
        "total_rebuffer",
        reference.total_rebuffer.value(),
        replayed.total_rebuffer.value(),
        tol,
    );
    d.float("mean_qoe", reference.mean_qoe.value(), replayed.mean_qoe.value(), tol);
    d.float(
        "downloaded",
        reference.downloaded.value(),
        replayed.downloaded.value(),
        tol,
    );
    d.float(
        "outage_time",
        reference.outage_time.value(),
        replayed.outage_time.value(),
        tol,
    );
    d.float(
        "wasted_energy",
        reference.wasted_energy.value(),
        replayed.wasted_energy.value(),
        tol,
    );
    d.float(
        "energy.screen",
        reference.energy.screen.value(),
        replayed.energy.screen.value(),
        tol,
    );
    d.float(
        "energy.decode",
        reference.energy.decode.value(),
        replayed.energy.decode.value(),
        tol,
    );
    d.float(
        "energy.radio",
        reference.energy.radio.value(),
        replayed.energy.radio.value(),
        tol,
    );
    d.float(
        "energy.tail",
        reference.energy.tail.value(),
        replayed.energy.tail.value(),
        tol,
    );
    d.count("switches", reference.switches, replayed.switches);
    d.count("retries", reference.retries, replayed.retries);
    d.count("aborts", reference.aborts, replayed.aborts);
    d.count(
        "degraded_segments",
        reference.degraded_segments,
        replayed.degraded_segments,
    );
    d.count("tasks.len", reference.tasks.len(), replayed.tasks.len());

    for (i, (r, p)) in reference.tasks.iter().zip(&replayed.tasks).enumerate() {
        d.count(&format!("tasks[{i}].task"), r.task.value(), p.task.value());
        d.count(&format!("tasks[{i}].level"), r.level.value(), p.level.value());
        d.float(&format!("tasks[{i}].bitrate"), r.bitrate.value(), p.bitrate.value(), tol);
        d.float(&format!("tasks[{i}].size"), r.size.value(), p.size.value(), tol);
        d.float(
            &format!("tasks[{i}].download_start"),
            r.download_start.value(),
            p.download_start.value(),
            tol,
        );
        d.float(
            &format!("tasks[{i}].download_end"),
            r.download_end.value(),
            p.download_end.value(),
            tol,
        );
        d.float(
            &format!("tasks[{i}].throughput"),
            r.throughput.value(),
            p.throughput.value(),
            tol,
        );
        d.float(&format!("tasks[{i}].signal"), r.signal.value(), p.signal.value(), tol);
        d.float(
            &format!("tasks[{i}].vibration"),
            r.vibration.value(),
            p.vibration.value(),
            tol,
        );
        d.float(&format!("tasks[{i}].rebuffer"), r.rebuffer.value(), p.rebuffer.value(), tol);
        d.float(
            &format!("tasks[{i}].radio_energy"),
            r.radio_energy.value(),
            p.radio_energy.value(),
            tol,
        );
        d.float(&format!("tasks[{i}].qoe"), r.qoe.value(), p.qoe.value(), tol);
    }

    // Accounting identities on the simulator's own result (§ 9).
    d.float(
        "identity.energy_total",
        reference.total_energy().value(),
        reference.energy.screen.value()
            + reference.energy.decode.value()
            + reference.energy.radio.value()
            + reference.energy.tail.value(),
        tol,
    );
    d.float_le(
        "identity.wasted_within_radio",
        reference.wasted_energy.value(),
        reference.energy.radio.value(),
        tol,
    );
    d.float(
        "identity.wall_decomposition",
        reference.wall_time.value(),
        reference.startup_delay.value()
            + reference.played.value()
            + reference.total_rebuffer.value(),
        WALL_IDENTITY_TOLERANCE,
    );
    d.float(
        "identity.task_radio_sum",
        reference.energy.radio.value(),
        reference.tasks.iter().map(|t| t.radio_energy.value()).sum(),
        tol,
    );
    d.count("identity.retry_per_abort", reference.aborts, reference.retries);

    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approach::Approach;
    use crate::runner::ExperimentRunner;
    use ecas_trace::synth::context::{Context, ContextSchedule};
    use ecas_trace::synth::SessionGenerator;

    fn session(ctx: Context, secs: f64, seed: u64) -> SessionTrace {
        SessionGenerator::new(
            "oracle-test",
            ContextSchedule::constant(ctx),
            Seconds::new(secs),
            seed,
        )
        .generate()
    }

    #[test]
    fn replay_matches_a_logged_run() {
        let runner = ExperimentRunner::paper();
        let s = session(Context::Walking, 60.0, 5);
        let (result, log) =
            runner.run_with_probe(&s, &Approach::Ours, &ecas_obs::NULL_PROBE);
        let oracle = Oracle::new(runner.simulator(), runner.eta());
        let verdict = oracle.check_replay(&s, &result, Some(&log));
        assert!(verdict.is_pass(), "{}", verdict.render());
    }

    #[test]
    fn missing_log_is_skipped_not_passed() {
        let runner = ExperimentRunner::paper();
        let s = session(Context::QuietRoom, 30.0, 1);
        let result = runner.run(&s, &Approach::Youtube);
        let oracle = Oracle::new(runner.simulator(), runner.eta());
        let verdict = oracle.check_replay(&s, &result, None);
        assert!(matches!(verdict, ReplayVerdict::Skipped { .. }));
        assert!(!verdict.is_pass());
        assert!(!verdict.is_fail());
    }

    #[test]
    fn tampered_result_is_caught_and_named() {
        let runner = ExperimentRunner::paper();
        let s = session(Context::Walking, 40.0, 8);
        let (mut result, log) =
            runner.run_with_probe(&s, &Approach::Festive, &ecas_obs::NULL_PROBE);
        result.energy.radio = Joules::new(result.energy.radio.value() + 1.0);
        let oracle = Oracle::new(runner.simulator(), runner.eta());
        let verdict = oracle.check_replay(&s, &result, Some(&log));
        match verdict {
            ReplayVerdict::Fail { ref divergences } => {
                assert!(
                    divergences.iter().any(|d| d.field == "energy.radio"),
                    "{}",
                    verdict.render()
                );
            }
            ref other => panic!("expected Fail, got {}", other.render()),
        }
    }

    #[test]
    fn truncated_log_is_a_structural_failure() {
        let runner = ExperimentRunner::paper();
        let s = session(Context::QuietRoom, 40.0, 3);
        let (result, log) =
            runner.run_with_probe(&s, &Approach::Bba, &ecas_obs::NULL_PROBE);
        // Drop the trailing PlaybackEnd: replay must refuse, not guess.
        let mut truncated = EventLog::new();
        for e in log.iter().take(log.len() - 1) {
            truncated.push(*e);
        }
        let oracle = Oracle::new(runner.simulator(), runner.eta());
        let verdict = oracle.check_replay(&s, &result, Some(&truncated));
        assert!(verdict.is_fail(), "{}", verdict.render());
    }

    #[test]
    fn objective_bound_holds_for_online_and_optimal() {
        let runner = ExperimentRunner::paper();
        let s = session(Context::MovingVehicle, 60.0, 4);
        let oracle = Oracle::new(runner.simulator(), runner.eta());
        let optimal = oracle.optimal_objective(&s);
        for approach in [Approach::Ours, Approach::Optimal, Approach::Youtube] {
            let result = runner.run(&s, &approach);
            let verdict = oracle
                .check_objective_against(&s, &result, optimal)
                .unwrap();
            assert!(verdict.holds(), "{}: {}", approach.label(), verdict.render());
        }
    }

    #[test]
    fn optimal_realizes_its_own_bound() {
        // The Optimal approach replays the planned levels through the
        // simulator, so its realized objective equals the planned one.
        let runner = ExperimentRunner::paper();
        let s = session(Context::Walking, 40.0, 6);
        let oracle = Oracle::new(runner.simulator(), runner.eta());
        let result = runner.run(&s, &Approach::Optimal);
        let verdict = oracle.check_objective(&s, &result).unwrap();
        assert!(
            (verdict.online - verdict.optimal).abs() < 1e-6,
            "{}",
            verdict.render()
        );
    }

    #[test]
    fn probe_counts_verdicts() {
        let runner = ExperimentRunner::paper();
        let s = session(Context::Walking, 30.0, 2);
        let (result, log) =
            runner.run_with_probe(&s, &Approach::Ours, &ecas_obs::NULL_PROBE);
        let oracle = Oracle::new(runner.simulator(), runner.eta());
        let recorder = ecas_obs::MemoryRecorder::new();
        let _ = oracle.check_replay_with_probe(&s, &result, Some(&log), &recorder);
        let _ = oracle.check_replay_with_probe(&s, &result, None, &recorder);
        let _ = oracle.check_objective_with_probe(&s, &result, &recorder);
        let snap = recorder.metrics().snapshot();
        assert_eq!(snap.counter(names::ORACLE_REPLAY_PASS), Some(1));
        assert_eq!(snap.counter(names::ORACLE_REPLAY_SKIP), Some(1));
        assert_eq!(snap.counter(names::ORACLE_OBJECTIVE_PASS), Some(1));
    }

    #[test]
    fn diff_tolerances_are_relative() {
        let mut d = Diff::default();
        d.float("big", 1.0e6, 1.0e6 + 1.0e-4, REPLAY_TOLERANCE);
        assert!(d.divergences.is_empty(), "relative slack at large scale");
        d.float("small", 1.0, 1.0 + 1.0e-4, REPLAY_TOLERANCE);
        assert_eq!(d.divergences.len(), 1, "absolute slack near 1.0 is tight");
        d.float("nan", f64::NAN, f64::NAN, REPLAY_TOLERANCE);
        assert_eq!(d.divergences.len(), 2, "NaN always diverges");
    }
}
