//! Seed-robustness analysis.
//!
//! The paper evaluates on five collected traces; a synthetic reproduction
//! can do better and ask how stable the headline numbers are across
//! re-drawn traces. This module re-generates the Table V set under many
//! seeds and reports the mean and standard deviation of each headline
//! metric per approach.

use ecas_trace::videos::EvalTraceSpec;
use serde::{Deserialize, Serialize};

use crate::approach::Approach;
use crate::metrics::ComparisonSummary;
use crate::runner::ExperimentRunner;

/// Mean and standard deviation of one metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedStat {
    /// Mean across seeds.
    pub mean: f64,
    /// Population standard deviation across seeds.
    pub std: f64,
    /// Number of seeds.
    pub n: usize,
}

impl SeedStat {
    fn of(values: &[f64]) -> Self {
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        Self {
            mean,
            std: var.sqrt(),
            n,
        }
    }
}

/// Headline metrics of one approach, aggregated across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// The approach.
    pub approach: Approach,
    /// Whole-phone energy saving vs Youtube.
    pub energy_saving: SeedStat,
    /// Extra-energy saving vs Youtube.
    pub extra_energy_saving: SeedStat,
    /// QoE degradation vs Youtube.
    pub qoe_degradation: SeedStat,
}

/// Runs the Table V evaluation across `seeds` trace re-draws.
///
/// # Examples
///
/// ```
/// use ecas_core::robustness::table_v_robustness;
/// use ecas_core::{Approach, ExperimentRunner};
///
/// let runner = ExperimentRunner::paper();
/// let rows = table_v_robustness(&runner, &[Approach::Youtube], &[0]);
/// assert_eq!(rows[0].energy_saving.mean, 0.0); // Youtube is the baseline
/// ```
///
/// Seed 0 reproduces the canonical traces; other values offset every
/// spec's seed, re-drawing the stochastic link/accelerometer processes
/// while keeping lengths, contexts and vibration targets.
///
/// # Panics
///
/// Panics if `seeds` is empty or `approaches` omits the Youtube baseline.
#[must_use]
pub fn table_v_robustness(
    runner: &ExperimentRunner,
    approaches: &[Approach],
    seeds: &[u64],
) -> Vec<RobustnessRow> {
    assert!(!seeds.is_empty(), "at least one seed required");
    let mut per_seed: Vec<ComparisonSummary> = Vec::with_capacity(seeds.len());
    for &offset in seeds {
        let sessions: Vec<_> = EvalTraceSpec::table_v()
            .iter()
            .map(|spec| {
                let mut spec = spec.clone();
                spec.seed = spec.seed.wrapping_add(offset.wrapping_mul(0x9E37_79B9));
                spec.generate()
            })
            .collect();
        per_seed.push(ComparisonSummary::evaluate(runner, &sessions, approaches));
    }

    approaches
        .iter()
        .map(|&approach| {
            let collect = |f: &dyn Fn(&ComparisonSummary) -> f64| -> Vec<f64> {
                per_seed.iter().map(f).collect()
            };
            RobustnessRow {
                approach,
                energy_saving: SeedStat::of(&collect(&|s| s.mean_energy_saving(approach))),
                extra_energy_saving: SeedStat::of(&collect(&|s| {
                    s.mean_extra_energy_saving(approach)
                })),
                qoe_degradation: SeedStat::of(&collect(&|s| s.mean_qoe_degradation(approach))),
            }
        })
        .collect()
}

#[cfg(test)]
// Tests assert exact fixture values; clippy::float_cmp guards library code.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn seed_stat_of_known_values() {
        let s = SeedStat::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn robustness_over_two_seeds_is_stable() {
        let runner = ExperimentRunner::paper();
        let approaches = [Approach::Youtube, Approach::Ours];
        let rows = table_v_robustness(&runner, &approaches, &[0, 1]);
        assert_eq!(rows.len(), 2);
        let ours = &rows[1];
        assert_eq!(ours.approach, Approach::Ours);
        // The saving is large in both draws and does not swing wildly.
        assert!(ours.energy_saving.mean > 0.12, "{:?}", ours.energy_saving);
        assert!(
            ours.energy_saving.std < 0.5 * ours.energy_saving.mean,
            "saving unstable: {:?}",
            ours.energy_saving
        );
        // Youtube is its own baseline: exactly zero with zero variance.
        assert_eq!(rows[0].energy_saving.mean, 0.0);
        assert_eq!(rows[0].energy_saving.std, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_seed_list() {
        let runner = ExperimentRunner::paper();
        let _ = table_v_robustness(&runner, &[Approach::Youtube], &[]);
    }
}
