//! Seed-robustness and fault-robustness analysis.
//!
//! The paper evaluates on five collected traces; a synthetic reproduction
//! can do better and ask how stable the headline numbers are across
//! re-drawn traces. This module re-generates the Table V set under many
//! seeds and reports the mean and standard deviation of each headline
//! metric per approach.
//!
//! It also hosts the fault sweep: the same approaches evaluated under
//! increasing [`ecas_sim::FaultSpec`] intensities, yielding one
//! degradation curve per approach (see [`fault_sweep`]).

use ecas_sim::FaultSpec;
use ecas_trace::session::SessionTrace;
use ecas_trace::videos::EvalTraceSpec;
use ecas_types::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

use crate::approach::Approach;
use crate::metrics::ComparisonSummary;
use crate::runner::ExperimentRunner;
use crate::sweep::{CacheStats, ExecPolicy, SweepEngine};

/// Mean and standard deviation of one metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
// ecas-lint: allow(pub-surface, reason = "re-exported robustness-report row type; part of the crate's published surface")
pub struct SeedStat {
    /// Mean across seeds.
    pub mean: f64,
    /// Population standard deviation across seeds.
    pub std: f64,
    /// Number of seeds.
    pub n: usize,
}

impl SeedStat {
    fn of(values: &[f64]) -> Self {
        // An empty slice would silently yield NaN mean/std and poison
        // every downstream table; fail loudly at the source instead.
        assert!(!values.is_empty(), "SeedStat::of requires at least one value");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        Self {
            mean,
            std: var.sqrt(),
            n,
        }
    }
}

/// Headline metrics of one approach, aggregated across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
// ecas-lint: allow(pub-surface, reason = "re-exported robustness-report row type; part of the crate's published surface")
pub struct RobustnessRow {
    /// The approach.
    pub approach: Approach,
    /// Whole-phone energy saving vs Youtube.
    pub energy_saving: SeedStat,
    /// Extra-energy saving vs Youtube.
    pub extra_energy_saving: SeedStat,
    /// QoE degradation vs Youtube.
    pub qoe_degradation: SeedStat,
}

/// Runs the Table V evaluation across `seeds` trace re-draws.
///
/// # Examples
///
/// ```
/// use ecas_core::robustness::table_v_robustness;
/// use ecas_core::{Approach, ExperimentRunner};
///
/// let runner = ExperimentRunner::paper();
/// let rows = table_v_robustness(&runner, &[Approach::Youtube], &[0]);
/// assert_eq!(rows[0].energy_saving.mean, 0.0); // Youtube is the baseline
/// ```
///
/// Seed 0 reproduces the canonical traces; other values offset every
/// spec's seed, re-drawing the stochastic link/accelerometer processes
/// while keeping lengths, contexts and vibration targets.
///
/// # Panics
///
/// Panics if `seeds` is empty or `approaches` omits the Youtube baseline.
#[must_use]
pub fn table_v_robustness(
    runner: &ExperimentRunner,
    approaches: &[Approach],
    seeds: &[u64],
) -> Vec<RobustnessRow> {
    table_v_robustness_with(runner, approaches, seeds, &ExecPolicy::parallel())
}

/// [`table_v_robustness`] under an explicit [`ExecPolicy`]; with a cached
/// policy every seed re-draw is memoized across invocations.
///
/// # Panics
///
/// Panics on the same invalid inputs as [`table_v_robustness`].
#[must_use]
pub(crate) fn table_v_robustness_with(
    runner: &ExperimentRunner,
    approaches: &[Approach],
    seeds: &[u64],
    policy: &ExecPolicy,
) -> Vec<RobustnessRow> {
    table_v_robustness_with_stats(runner, approaches, seeds, policy).0
}

/// [`table_v_robustness_with`] returning the accumulated [`CacheStats`]
/// across every seed re-draw (one engine serves the whole run, so the
/// stats cover all seeds).
///
/// # Panics
///
/// Panics on the same invalid inputs as [`table_v_robustness`].
#[must_use]
pub fn table_v_robustness_with_stats(
    runner: &ExperimentRunner,
    approaches: &[Approach],
    seeds: &[u64],
    policy: &ExecPolicy,
) -> (Vec<RobustnessRow>, CacheStats) {
    assert!(!seeds.is_empty(), "at least one seed required");
    let engine = SweepEngine::new(runner.clone());
    let mut per_seed: Vec<ComparisonSummary> = Vec::with_capacity(seeds.len());
    for &offset in seeds {
        let sessions: Vec<_> = EvalTraceSpec::table_v()
            .iter()
            .map(|spec| {
                let mut spec = spec.clone();
                spec.seed = spec.seed.wrapping_add(offset.wrapping_mul(0x9E37_79B9));
                spec.generate()
            })
            .collect();
        per_seed.push(engine.comparison(&sessions, approaches, policy));
    }

    let rows = approaches
        .iter()
        .map(|&approach| {
            let collect = |f: &dyn Fn(&ComparisonSummary) -> f64| -> Vec<f64> {
                per_seed.iter().map(f).collect()
            };
            RobustnessRow {
                approach,
                energy_saving: SeedStat::of(&collect(&|s| s.mean_energy_saving(approach))),
                extra_energy_saving: SeedStat::of(&collect(&|s| {
                    s.mean_extra_energy_saving(approach)
                })),
                qoe_degradation: SeedStat::of(&collect(&|s| s.mean_qoe_degradation(approach))),
            }
        })
        .collect();
    (rows, engine.stats())
}

/// One cell of a fault sweep: an approach evaluated under one fault
/// intensity, averaged over the evaluation sessions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepCell {
    /// The approach.
    pub approach: Approach,
    /// The [`ecas_sim::FaultSpec::scaled`] intensity in `[0, 1]`.
    pub intensity: f64,
    /// Mean per-session QoE.
    pub mean_qoe: f64,
    /// QoE lost relative to the same approach at intensity zero
    /// (positive = the faults hurt).
    pub qoe_degradation: f64,
    /// Mean whole-session energy.
    pub mean_energy: Joules,
    /// Mean rebuffer time per session.
    pub mean_rebuffer: Seconds,
    /// Total download retries across the sessions.
    pub retries: usize,
    /// Total aborted attempts across the sessions.
    pub aborts: usize,
    /// Total segments delivered at the fallback level.
    pub degraded_segments: usize,
    /// Total radio energy wasted on aborted attempts.
    pub wasted_energy: Joules,
    /// Total injected outage time overlapping the sessions.
    pub outage_time: Seconds,
}

/// Sweeps approaches across fault intensities, producing one degradation
/// curve per approach (cells are intensity-major, `approaches`-minor —
/// the same order as nested `for intensity { for approach }` loops).
///
/// Intensity `0.0` is always evaluated (and prepended if absent) because
/// every cell's [`FaultSweepCell::qoe_degradation`] is measured against
/// the same approach on the fault-free link.
///
/// # Examples
///
/// ```
/// use ecas_core::robustness::fault_sweep;
/// use ecas_core::trace::videos::EvalTraceSpec;
/// use ecas_core::{Approach, ExperimentRunner};
///
/// let sessions = vec![EvalTraceSpec::table_v()[0].generate()];
/// let cells = fault_sweep(
///     &ExperimentRunner::paper(),
///     &sessions,
///     &[Approach::Youtube],
///     &[0.5],
///     7,
/// );
/// assert_eq!(cells.len(), 2); // intensity 0.0 prepended
/// assert!(cells[0].qoe_degradation.abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `sessions`, `approaches` or `intensities` is empty, or if an
/// intensity lies outside `[0, 1]`.
#[must_use]
pub fn fault_sweep(
    runner: &ExperimentRunner,
    sessions: &[SessionTrace],
    approaches: &[Approach],
    intensities: &[f64],
    seed: u64,
) -> Vec<FaultSweepCell> {
    fault_sweep_with(
        runner,
        sessions,
        approaches,
        intensities,
        seed,
        &ExecPolicy::parallel(),
    )
}

/// [`fault_sweep`] under an explicit [`ExecPolicy`]. Each intensity runs
/// its grid through one [`SweepEngine`]; the fault spec participates in
/// the cache key, so cached sweeps stay correct across intensities.
///
/// # Panics
///
/// Panics on the same invalid inputs as [`fault_sweep`].
#[must_use]
pub(crate) fn fault_sweep_with(
    runner: &ExperimentRunner,
    sessions: &[SessionTrace],
    approaches: &[Approach],
    intensities: &[f64],
    seed: u64,
    policy: &ExecPolicy,
) -> Vec<FaultSweepCell> {
    fault_sweep_with_stats(runner, sessions, approaches, intensities, seed, policy).0
}

/// [`fault_sweep_with`] returning the merged [`CacheStats`] across every
/// intensity's engine (each intensity runs its own engine because the
/// fault spec is part of the runner; their stats are folded together with
/// [`CacheStats::merge`]).
///
/// # Panics
///
/// Panics on the same invalid inputs as [`fault_sweep`].
#[must_use]
pub fn fault_sweep_with_stats(
    runner: &ExperimentRunner,
    sessions: &[SessionTrace],
    approaches: &[Approach],
    intensities: &[f64],
    seed: u64,
    policy: &ExecPolicy,
) -> (Vec<FaultSweepCell>, CacheStats) {
    assert!(!sessions.is_empty(), "at least one session required");
    assert!(!approaches.is_empty(), "at least one approach required");
    assert!(!intensities.is_empty(), "at least one intensity required");
    assert!(
        intensities.iter().all(|i| (0.0..=1.0).contains(i)),
        "intensities must lie in [0, 1]"
    );

    let mut levels: Vec<f64> = Vec::with_capacity(intensities.len() + 1);
    if intensities.first().copied().unwrap_or(1.0) > 0.0 {
        levels.push(0.0);
    }
    levels.extend_from_slice(intensities);

    let mut cells: Vec<FaultSweepCell> = Vec::with_capacity(levels.len() * approaches.len());
    let mut baseline_qoe: Vec<f64> = Vec::new();
    let mut stats = CacheStats::default();
    for &intensity in &levels {
        let spec = FaultSpec::scaled(intensity, seed);
        let faulty = ExperimentRunner::new(
            runner.simulator().clone().with_faults(spec),
            runner.eta(),
        );
        let engine = SweepEngine::new(faulty);
        let grid = engine.run_grid(sessions, approaches, policy);
        stats.merge(engine.stats());
        for (ai, &approach) in approaches.iter().enumerate() {
            // The grid is sessions-major: approach `ai` occupies every
            // `approaches.len()`-th result starting at offset `ai`.
            let results: Vec<_> = grid
                .iter()
                .skip(ai)
                .step_by(approaches.len())
                .cloned()
                .collect();
            let n = results.len() as f64;
            let mean_qoe = results.iter().map(|r| r.mean_qoe.value()).sum::<f64>() / n;
            if baseline_qoe.len() <= ai {
                // First intensity evaluated is always 0.0 (fault-free).
                baseline_qoe.push(mean_qoe);
            }
            cells.push(FaultSweepCell {
                approach,
                intensity,
                mean_qoe,
                qoe_degradation: baseline_qoe.get(ai).copied().unwrap_or(mean_qoe) - mean_qoe,
                mean_energy: Joules::new(
                    results.iter().map(|r| r.total_energy().value()).sum::<f64>() / n,
                ),
                mean_rebuffer: Seconds::new(
                    results.iter().map(|r| r.total_rebuffer.value()).sum::<f64>() / n,
                ),
                retries: results.iter().map(|r| r.retries).sum(),
                aborts: results.iter().map(|r| r.aborts).sum(),
                degraded_segments: results.iter().map(|r| r.degraded_segments).sum(),
                wasted_energy: Joules::new(
                    results.iter().map(|r| r.wasted_energy.value()).sum(),
                ),
                outage_time: Seconds::new(
                    results.iter().map(|r| r.outage_time.value()).sum(),
                ),
            });
        }
    }
    (cells, stats)
}

#[cfg(test)]
// Tests assert exact fixture values; clippy::float_cmp guards library code.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn seed_stat_of_known_values() {
        let s = SeedStat::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn robustness_over_two_seeds_is_stable() {
        let runner = ExperimentRunner::paper();
        let approaches = [Approach::Youtube, Approach::Ours];
        let rows = table_v_robustness(&runner, &approaches, &[0, 1]);
        assert_eq!(rows.len(), 2);
        let ours = &rows[1];
        assert_eq!(ours.approach, Approach::Ours);
        // The saving is large in both draws and does not swing wildly.
        assert!(ours.energy_saving.mean > 0.12, "{:?}", ours.energy_saving);
        assert!(
            ours.energy_saving.std < 0.5 * ours.energy_saving.mean,
            "saving unstable: {:?}",
            ours.energy_saving
        );
        // Youtube is its own baseline: exactly zero with zero variance.
        assert_eq!(rows[0].energy_saving.mean, 0.0);
        assert_eq!(rows[0].energy_saving.std, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_seed_list() {
        let runner = ExperimentRunner::paper();
        let _ = table_v_robustness(&runner, &[Approach::Youtube], &[]);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn seed_stat_rejects_empty_slice() {
        let _ = SeedStat::of(&[]);
    }

    fn sweep_sessions() -> Vec<SessionTrace> {
        use ecas_trace::synth::context::{Context, ContextSchedule};
        use ecas_trace::synth::SessionGenerator;
        vec![SessionGenerator::new(
            "fault-sweep-test",
            ContextSchedule::constant(Context::Walking),
            Seconds::new(60.0),
            11,
        )
        .generate()]
    }

    #[test]
    fn fault_sweep_prepends_baseline_and_is_deterministic() {
        let runner = ExperimentRunner::paper();
        let sessions = sweep_sessions();
        let approaches = [Approach::Youtube, Approach::Ours];
        let a = fault_sweep(&runner, &sessions, &approaches, &[0.6], 3);
        let b = fault_sweep(&runner, &sessions, &approaches, &[0.6], 3);
        assert_eq!(a, b, "same seed and spec must reproduce exactly");
        // Two intensities (0.0 prepended) x two approaches.
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].intensity, 0.0);
        assert_eq!(a[2].intensity, 0.6);
        // The baseline row measures zero degradation by construction.
        assert_eq!(a[0].qoe_degradation, 0.0);
        assert_eq!(a[0].retries, 0);
        assert_eq!(a[0].outage_time, Seconds::zero());
    }

    #[test]
    fn fault_sweep_hostile_link_causes_retries() {
        let runner = ExperimentRunner::paper();
        let sessions = sweep_sessions();
        let cells = fault_sweep(&runner, &sessions, &[Approach::Youtube], &[1.0], 5);
        let severe = cells.last().unwrap();
        assert_eq!(severe.intensity, 1.0);
        assert!(
            severe.retries > 0 || severe.outage_time.value() > 0.0,
            "a severe link must visibly perturb the session: {severe:?}"
        );
        assert!(severe.mean_qoe.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one intensity")]
    fn fault_sweep_rejects_empty_intensities() {
        let runner = ExperimentRunner::paper();
        let sessions = sweep_sessions();
        let _ = fault_sweep(&runner, &sessions, &[Approach::Youtube], &[], 1);
    }
}
