//! Fleet-engine guarantees through the public API: same-seed runs are
//! byte-identical, the aggregate is independent of execution policy and
//! batch size, metrics flow into an attached registry, and sharded
//! reducers agree with the streaming single pass.

#![allow(clippy::float_cmp)] // exact equality is the property under test

use std::sync::Arc;

use ecas_core::fleet::{FleetEngine, FleetReducer};
use ecas_core::obs::{names, MetricsRegistry};
use ecas_core::trace::population::{PopulationSpec, SessionBatch};
use ecas_core::types::units::Seconds;
use ecas_core::{Approach, ExecPolicy, ExperimentRunner, SweepEngine};

fn spec(users: u64) -> PopulationSpec {
    PopulationSpec::new(users, 0xF1EE7).mean_duration(Seconds::new(20.0))
}

#[test]
fn same_seed_fleet_runs_are_byte_identical() {
    let spec = spec(16);
    let a = FleetEngine::paper().batch_size(5).run(&spec, &ExecPolicy::parallel());
    let b = FleetEngine::paper().batch_size(5).run(&spec, &ExecPolicy::parallel());
    assert_eq!(a, b);
    assert_eq!(a.render(), b.render());
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn aggregate_is_independent_of_policy_and_batch_size() {
    let spec = spec(14);
    let seq = FleetEngine::paper().batch_size(4).run(&spec, &ExecPolicy::Sequential);
    for (jobs, batch) in [(2, 4), (3, 4), (2, 14), (4, 1)] {
        let par = FleetEngine::paper()
            .batch_size(batch)
            .run(&spec, &ExecPolicy::Parallel { jobs });
        assert_eq!(
            seq.render(),
            par.render(),
            "jobs={jobs} batch={batch} must match sequential byte-for-byte"
        );
        assert_eq!(seq, par);
    }
}

#[test]
fn different_seeds_give_different_fleets() {
    let a = FleetEngine::paper().run(&PopulationSpec::new(12, 1).mean_duration(Seconds::new(20.0)), &ExecPolicy::Sequential);
    let b = FleetEngine::paper().run(&PopulationSpec::new(12, 2).mean_duration(Seconds::new(20.0)), &ExecPolicy::Sequential);
    assert_ne!(a.render(), b.render(), "seed must drive the population");
}

#[test]
fn registry_sees_fleet_progress() {
    let registry = Arc::new(MetricsRegistry::new());
    let report = FleetEngine::paper()
        .batch_size(4)
        .with_registry(Arc::clone(&registry))
        .run(&spec(9), &ExecPolicy::Sequential);
    assert_eq!(report.users, 9);
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter(names::FLEET_USERS), Some(9));
    assert_eq!(
        snapshot.counter(names::FLEET_BATCHES),
        Some(3),
        "9 users in batches of 4"
    );
}

#[test]
fn sharded_reduction_matches_streaming_pass() {
    let spec = spec(8);
    let mut batch = SessionBatch::with_capacity(8);
    batch.refill(&spec, 0, 8);
    let results = SweepEngine::new(ExperimentRunner::paper()).run_grid(
        batch.sessions(),
        &[Approach::Ours],
        &ExecPolicy::Sequential,
    );

    let mut streaming = FleetReducer::new();
    for (u, r) in batch.specs().iter().zip(&results) {
        streaming.absorb(u, r);
    }
    // Three shards over disjoint ranges, merged out of construction order.
    let mut shards = [FleetReducer::new(), FleetReducer::new(), FleetReducer::new()];
    for (i, (u, r)) in batch.specs().iter().zip(&results).enumerate() {
        shards[i % 3].absorb(u, r);
    }
    let [mut merged, mid, last] = shards;
    merged.merge(&last);
    merged.merge(&mid);

    let a = streaming.finalize();
    let b = merged.finalize();
    assert_eq!(a.users, b.users);
    assert_eq!(a.segments, b.segments);
    assert_eq!(a.switches, b.switches);
    assert_eq!(a.stalled_sessions, b.stalled_sessions);
    assert_eq!(a.arrivals_by_hour, b.arrivals_by_hour);
    assert_eq!(a.qoe_tail, b.qoe_tail, "histogram merge is exact");
    assert_eq!(a.energy_tail, b.energy_tail);
    // f64 sums are associative only up to round-off.
    assert!((a.mean_qoe - b.mean_qoe).abs() < 1e-9);
    assert!((a.mean_energy_j - b.mean_energy_j).abs() < 1e-6);
    assert!((a.rebuffer_ratio - b.rebuffer_ratio).abs() < 1e-12);
}
