//! Integration tests for the `.ecasr` session-record pipeline: the
//! record → serialize → parse → replay → verify loop across scenarios,
//! plus hostile-bytes behaviour at the whole-record level.

use ecas_core::record::{RecordScenario, RecordedSession, SessionRecord};
use ecas_core::sim::FaultSpec;
use ecas_core::trace::Context;
use ecas_core::{Approach, ReplayVerdict};
use proptest::prelude::*;

fn verify_roundtrip(scenario: RecordScenario) {
    let label = scenario.label();
    let record = SessionRecord::record(scenario).unwrap();
    let bytes = record.to_bytes().unwrap();
    let back = SessionRecord::from_bytes(&bytes).unwrap();
    assert_eq!(record, back, "{label}: parse changed the record");
    match back.verify().unwrap() {
        ReplayVerdict::Pass { .. } => {}
        other => panic!("{label}: {}", other.render()),
    }
}

#[test]
fn table_v_matrix_records_and_verifies() {
    // One representative approach per Table V context class keeps the
    // matrix fast while crossing trace x controller.
    let cases = [
        (1u8, Approach::Ours),
        (2, Approach::Youtube),
        (3, Approach::Festive),
        (4, Approach::Bba),
        (5, Approach::Optimal),
    ];
    for (id, approach) in cases {
        verify_roundtrip(RecordScenario {
            session: RecordedSession::TableV { id },
            approach,
            eta: 0.5,
            fault: None,
        });
    }
}

#[test]
fn faulted_and_commute_sessions_verify() {
    verify_roundtrip(RecordScenario {
        session: RecordedSession::TableV { id: 1 },
        approach: Approach::Ours,
        eta: 0.5,
        fault: Some(FaultSpec::moderate(1)),
    });
    verify_roundtrip(RecordScenario {
        session: RecordedSession::Commute {
            seconds: 120.0,
            seed: 3,
        },
        approach: Approach::Ours,
        eta: 0.5,
        fault: None,
    });
}

#[test]
fn every_byte_flip_is_detected_or_benign() {
    let record = SessionRecord::record(RecordScenario {
        session: RecordedSession::Synthetic {
            context: Context::Walking,
            seconds: 20.0,
            seed: 11,
        },
        approach: Approach::Ours,
        eta: 0.5,
        fault: None,
    })
    .unwrap();
    let bytes = record.to_bytes().unwrap();
    // Flip one bit in every byte: parsing must either fail with a typed
    // error or — never — silently yield a different record. It must not
    // panic anywhere.
    for i in 0..bytes.len() {
        let mut tampered = bytes.clone();
        tampered[i] ^= 0x01;
        assert!(
            SessionRecord::from_bytes(&tampered).is_err(),
            "flip at byte {i} of {} went undetected",
            bytes.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Fuzz-sampled scenarios: short synthetic sessions across contexts,
    // approaches, eta and fault intensity all record, round-trip and
    // verify.
    #[test]
    fn fuzzed_scenarios_roundtrip_and_verify(
        seed in 0u64..1000,
        secs in 8.0f64..30.0,
        ctx in 0usize..4,
        approach in 0usize..10,
        eta in 0.0f64..1.0,
        fault in proptest::option::of(0.1f64..1.0),
    ) {
        let session = match ctx {
            0 => RecordedSession::Synthetic { context: Context::QuietRoom, seconds: secs, seed },
            1 => RecordedSession::Synthetic { context: Context::Walking, seconds: secs, seed },
            2 => RecordedSession::Synthetic { context: Context::MovingVehicle, seconds: secs, seed },
            _ => RecordedSession::Commute { seconds: secs, seed },
        };
        let scenario = RecordScenario {
            session,
            approach: Approach::all()[approach],
            eta,
            fault: fault.map(|f| FaultSpec::scaled(f, seed)),
        };
        let record = SessionRecord::record(scenario).unwrap();
        let bytes = record.to_bytes().unwrap();
        let back = SessionRecord::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&record, &back);
        prop_assert!(matches!(back.verify().unwrap(), ReplayVerdict::Pass { .. }));
        // Determinism end to end: a second recording is byte-identical.
        prop_assert_eq!(bytes, record.rerecord().unwrap().to_bytes().unwrap());
    }
}
