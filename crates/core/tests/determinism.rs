//! Reproducibility guarantees: two observed runs of the same scenario
//! must produce byte-identical JSONL event streams and equal run-manifest
//! hashes. Wall-clock metrics are exempt — they live in a separate stream
//! precisely so these assertions can hold.

use std::fs;
use std::path::{Path, PathBuf};

use ecas_core::obs::{MemoryRecorder, RunManifest};
use ecas_core::trace::synth::context::Context;
use ecas_core::{observe, Approach, ExperimentRunner, Scenario, TraceSelection};

fn scenario() -> Scenario {
    Scenario::builder("determinism")
        .traces(TraceSelection::Synthetic {
            context: Context::MovingVehicle,
            seconds: 60.0,
            count: 2,
            base_seed: 23,
        })
        .approaches(vec![Approach::Youtube, Approach::Ours, Approach::Festive])
        .build()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecas-determinism-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn event_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir.join("events"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    names
}

#[test]
fn same_seed_observed_runs_are_byte_identical() {
    let scenario = scenario();
    let dir_a = temp_dir("a");
    let dir_b = temp_dir("b");
    let summary_a = observe::run_observed(&scenario, &dir_a).unwrap();
    let summary_b = observe::run_observed(&scenario, &dir_b).unwrap();
    assert_eq!(summary_a, summary_b);

    // Equal manifest hashes: same seeds, ladder, config, version.
    let manifest_a =
        RunManifest::from_json(&fs::read_to_string(dir_a.join("manifest.json")).unwrap()).unwrap();
    let manifest_b =
        RunManifest::from_json(&fs::read_to_string(dir_b.join("manifest.json")).unwrap()).unwrap();
    assert_eq!(manifest_a.stable_hash(), manifest_b.stable_hash());

    // Byte-identical event streams, file by file.
    let files = event_files(&dir_a);
    assert_eq!(files, event_files(&dir_b));
    assert_eq!(files.len(), 2 * 3, "one stream per (trace, approach)");
    for name in &files {
        let bytes_a = fs::read(dir_a.join("events").join(name)).unwrap();
        let bytes_b = fs::read(dir_b.join("events").join(name)).unwrap();
        assert!(!bytes_a.is_empty(), "{name} is empty");
        assert_eq!(bytes_a, bytes_b, "{name} differs between reruns");
    }

    fs::remove_dir_all(&dir_a).ok();
    fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn different_scenario_changes_manifest_hash() {
    let runner = ExperimentRunner::paper();
    let base = observe::manifest(&scenario(), &runner);
    let mut changed = scenario();
    changed.traces = TraceSelection::Synthetic {
        context: Context::MovingVehicle,
        seconds: 60.0,
        count: 2,
        base_seed: 24, // one seed off
    };
    let other = observe::manifest(&changed, &runner);
    assert_ne!(base.stable_hash(), other.stable_hash());
}

#[test]
fn in_memory_event_streams_are_byte_identical_across_runs() {
    // The filesystem-free variant: MemoryRecorder serializes through the
    // same path as JsonlRecorder.
    let runner = ExperimentRunner::paper();
    let session = scenario().traces.sessions().remove(0);
    let recorder_a = MemoryRecorder::new();
    let recorder_b = MemoryRecorder::new();
    let (result_a, _) = runner.run_with_probe(&session, &Approach::Ours, &recorder_a);
    let (result_b, _) = runner.run_with_probe(&session, &Approach::Ours, &recorder_b);
    assert_eq!(result_a, result_b);
    assert_eq!(recorder_a.to_jsonl(), recorder_b.to_jsonl());
    assert!(!recorder_a.to_jsonl().is_empty());
}
