//! Replay-identity and differential-optimality checks over the paper's
//! canonical evaluation set (Table V × every approach) and a faulted
//! scenario. These are the oracle's acceptance tests; `oracle_fuzz`
//! extends the same checks over randomized scenarios.

use ecas_core::oracle::{Oracle, ReplayVerdict};
use ecas_core::trace::synth::context::Context;
use ecas_core::trace::videos::EvalTraceSpec;
use ecas_core::{Approach, ExperimentRunner, Scenario, TraceSelection};
use ecas_obs::NULL_PROBE;
use ecas_sim::FaultSpec;

/// Every approach on every Table V trace replays to the simulator's
/// result within tolerance, and no realized objective beats the
/// shortest-path optimum.
#[test]
fn table_v_replays_and_respects_the_optimal_bound() {
    let runner = ExperimentRunner::paper();
    let oracle = Oracle::new(runner.simulator(), runner.eta());
    for spec in &EvalTraceSpec::table_v() {
        let session = spec.generate();
        // One Dijkstra per session, shared across all ten approaches.
        let optimal = oracle.optimal_objective(&session);
        for approach in Approach::all() {
            let (result, log) = runner.run_with_probe(&session, &approach, &NULL_PROBE);
            let verdict = oracle.check_replay(&session, &result, Some(&log));
            assert!(
                verdict.is_pass(),
                "{} on {}: {}",
                approach.label(),
                result.trace,
                verdict.render()
            );
            let objective = oracle
                .check_objective_against(&session, &result, optimal)
                .expect("task count matches the session");
            assert!(
                objective.holds(),
                "{} on {}: {}",
                approach.label(),
                result.trace,
                objective.render()
            );
        }
    }
}

/// Replay identity survives fault injection: retries, aborts, backoff
/// tails, degraded segments and outage accounting all reconstruct from
/// the event log.
#[test]
fn moderate_faults_replay_exactly() {
    let scenario = Scenario::builder("oracle-moderate-faults")
        .traces(TraceSelection::Synthetic {
            context: Context::MovingVehicle,
            seconds: 90.0,
            count: 2,
            base_seed: 7,
        })
        .approaches(Approach::paper_set().to_vec())
        .fault(FaultSpec::moderate(42))
        .build();
    let runner = scenario.runner();
    let oracle = Oracle::new(runner.simulator(), runner.eta());
    let mut faulted_sessions = 0usize;
    for session in scenario.traces.sessions() {
        for approach in &scenario.approaches {
            let (result, log) = runner.run_with_probe(&session, approach, &NULL_PROBE);
            if result.retries > 0 || result.outage_time.value() > 0.0 {
                faulted_sessions += 1;
            }
            let verdict = oracle.check_replay(&session, &result, Some(&log));
            assert!(
                verdict.is_pass(),
                "{} on {}: {}",
                approach.label(),
                result.trace,
                verdict.render()
            );
        }
    }
    assert!(
        faulted_sessions > 0,
        "the moderate fault spec never bit — the scenario exercises nothing"
    );
}

/// An unlogged run yields an explicit skip, never a silent pass.
#[test]
fn unlogged_runs_are_reported_as_skipped() {
    let runner = ExperimentRunner::paper();
    let oracle = Oracle::new(runner.simulator(), runner.eta());
    let session = EvalTraceSpec::table_v()[0].generate();
    let result = runner.run(&session, &Approach::Ours);
    match oracle.check_replay(&session, &result, None) {
        ReplayVerdict::Skipped { reason } => {
            assert!(reason.contains("no event log"), "{reason}");
        }
        other => panic!("expected Skipped, got {}", other.render()),
    }
}

/// Tampering with any accounted field is caught and named. This guards
/// the diff itself: a diff that compares nothing would pass everything.
#[test]
fn tampered_fields_are_caught_and_named() {
    let runner = ExperimentRunner::paper();
    let oracle = Oracle::new(runner.simulator(), runner.eta());
    let session = EvalTraceSpec::table_v()[1].generate();
    let (reference, log) = runner.run_with_probe(&session, &Approach::Bba, &NULL_PROBE);

    type Tamper = Box<dyn Fn(&mut ecas_sim::SessionResult)>;
    let tampered: Vec<(&str, Tamper)> = vec![
        (
            "wall_time",
            Box::new(|r| r.wall_time = ecas_core::types::units::Seconds::new(r.wall_time.value() + 0.5)),
        ),
        (
            "energy.tail",
            Box::new(|r| r.energy.tail = ecas_core::types::units::Joules::new(r.energy.tail.value() * 1.01)),
        ),
        ("switches", Box::new(|r| r.switches += 1)),
        (
            "tasks[0].qoe",
            Box::new(|r| {
                if let Some(t) = r.tasks.first_mut() {
                    t.qoe = ecas_core::types::units::QoeScore::new(t.qoe.value() + 0.25);
                }
            }),
        ),
    ];
    for (field, tamper) in tampered {
        let mut result = reference.clone();
        tamper(&mut result);
        match oracle.check_replay(&session, &result, Some(&log)) {
            ReplayVerdict::Fail { divergences } => {
                assert!(
                    divergences.iter().any(|d| d.field == field),
                    "tampering {field} flagged {:?}",
                    divergences.iter().map(|d| d.field.clone()).collect::<Vec<_>>()
                );
            }
            other => panic!("tampering {field} passed: {}", other.render()),
        }
    }
}
