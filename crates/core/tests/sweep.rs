//! Public-API guarantees of the sweep engine's result cache: a warm
//! cache only serves cells whose full key context matches — changing
//! the simulator configuration, the trace seed, the η weight or the
//! fault spec must miss and recompute, never serve stale results.

use std::fs;
use std::path::PathBuf;

use ecas_core::sim::{FaultSpec, PlayerConfig, Simulator};
use ecas_core::sweep::{ExecPolicy, SweepEngine};
use ecas_core::trace::synth::context::{Context, ContextSchedule};
use ecas_core::trace::synth::SessionGenerator;
use ecas_core::types::ladder::BitrateLadder;
use ecas_core::types::units::Seconds;
use ecas_core::{Approach, ComparisonSummary, ExperimentRunner};

fn session(seed: u64) -> ecas_core::trace::session::SessionTrace {
    SessionGenerator::new(
        format!("sweep-{seed}"),
        ContextSchedule::constant(Context::Walking),
        Seconds::new(30.0),
        seed,
    )
    .generate()
}

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecas-sweep-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cached(dir: &PathBuf) -> ExecPolicy {
    ExecPolicy::cached(dir, ExecPolicy::Sequential)
}

/// Runs the two-cell grid under `runner` against `cache`, returning
/// `(hits, misses)`.
fn grid_stats(runner: &ExperimentRunner, seed: u64, cache: &PathBuf) -> (u64, u64) {
    let engine = SweepEngine::new(runner.clone());
    let sessions = vec![session(seed)];
    let _ = engine.run_grid(
        &sessions,
        &[Approach::Youtube, Approach::Ours],
        &cached(cache),
    );
    let stats = engine.stats();
    (stats.hits, stats.misses)
}

#[test]
fn identical_inputs_hit_but_any_key_change_misses() {
    let cache = temp_cache("invalidation");
    let paper = ExperimentRunner::paper();

    assert_eq!(grid_stats(&paper, 5, &cache), (0, 2), "cold run");
    assert_eq!(grid_stats(&paper, 5, &cache), (2, 0), "warm identical run");

    // A different trace seed changes the session content hash.
    assert_eq!(grid_stats(&paper, 6, &cache), (0, 2), "seed change");

    // A different η changes the controller objective.
    let eta = ExperimentRunner::paper_with_eta(0.9);
    assert_eq!(grid_stats(&eta, 5, &cache), (0, 2), "eta change");

    // A different simulator configuration changes the config hash.
    let config = PlayerConfig::paper().with_buffer_threshold(Seconds::new(12.0));
    let sim = Simulator::new(
        config,
        BitrateLadder::evaluation(),
        ecas_core::power::model::PowerModel::paper(),
        ecas_core::qoe::model::QoeModel::paper(),
    );
    let reconfigured = ExperimentRunner::new(sim, 0.5);
    assert_eq!(grid_stats(&reconfigured, 5, &cache), (0, 2), "config change");

    // A fault spec keys separately from the fault-free grid.
    let faulty_sim = Simulator::paper(BitrateLadder::evaluation())
        .with_faults(FaultSpec::scaled(0.5, 7));
    let faulty = ExperimentRunner::new(faulty_sim, 0.5);
    assert_eq!(grid_stats(&faulty, 5, &cache), (0, 2), "fault-spec change");

    // And every variant, rerun unchanged, now hits.
    assert_eq!(grid_stats(&faulty, 5, &cache), (2, 0), "warm faulty run");

    fs::remove_dir_all(&cache).ok();
}

#[test]
fn parallel_and_sequential_summaries_are_identical() {
    let runner = ExperimentRunner::paper();
    let sessions = vec![session(1), session(2), session(3)];
    let approaches = [Approach::Youtube, Approach::Festive, Approach::Ours];
    let sequential = ComparisonSummary::evaluate_with(
        &runner,
        &sessions,
        &approaches,
        &ExecPolicy::Sequential,
    );
    let parallel = ComparisonSummary::evaluate_with(
        &runner,
        &sessions,
        &approaches,
        &ExecPolicy::Parallel { jobs: 4 },
    );
    assert_eq!(sequential, parallel);
}
