//! Corpus round-trip through the public API: batch-record a small
//! fleet, verify it cold (order-stable across worker counts, filterable
//! by label), then warm a cached fleet run straight from the recorded
//! references — zero simulator executions.

use std::path::{Path, PathBuf};

use ecas_core::corpus::{self, CorpusIndex, CorpusOptions, VerifyOptions};
use ecas_core::fleet::FleetEngine;
use ecas_core::trace::population::PopulationSpec;
use ecas_core::types::units::Seconds;
use ecas_core::{Approach, ExecPolicy};

const USERS: u64 = 4;
const SEED: u64 = 99;
const DURATION_S: f64 = 20.0;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecas-corpus-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn record_fleet(dir: &Path) -> CorpusIndex {
    let scenarios = corpus::fleet_scenarios(USERS, SEED, DURATION_S, Approach::Ours, 0.5, None);
    corpus::batch_record(dir, &scenarios, &CorpusOptions { jobs: 2, batch: 2 }).unwrap()
}

#[test]
fn corpus_round_trip_records_verifies_and_warms_a_fleet_run() {
    let dir = temp_dir("roundtrip");
    let index = record_fleet(&dir);
    assert_eq!(index.entries.len(), USERS as usize);

    // Cold verify: the parallel summary is byte-identical to the
    // sequential one, regardless of completion order.
    let paths = corpus::list(&dir).unwrap();
    assert_eq!(paths.len(), USERS as usize);
    let sequential = corpus::verify(&paths, &VerifyOptions { jobs: 1, filter: None });
    let parallel = corpus::verify(&paths, &VerifyOptions { jobs: 3, filter: None });
    assert_eq!(sequential.failures, 0, "{}", sequential.render());
    assert_eq!(sequential.records, USERS as usize);
    assert_eq!(sequential.render(), parallel.render());

    // Label filtering skips (not fails) the records that don't match.
    let one_user = corpus::verify(
        &paths,
        &VerifyOptions {
            jobs: 2,
            filter: Some("u1-".to_string()),
        },
    );
    assert_eq!(one_user.records, 1);
    assert_eq!(one_user.skipped, USERS as usize - 1);
    assert_eq!(one_user.failures, 0);

    // Warm fleet run served entirely from the recorded references: the
    // cache directory holds only `.ecasr` files (no JSONL entries), yet
    // every cell hits and the simulator never runs.
    let spec = PopulationSpec::new(USERS, SEED).mean_duration(Seconds::new(DURATION_S));
    let uncached = FleetEngine::paper().run(&spec, &ExecPolicy::Sequential);
    let warm_engine = FleetEngine::paper();
    let warm = warm_engine.run(&spec, &ExecPolicy::cached(&dir, ExecPolicy::Sequential));
    let stats = warm_engine.stats();
    assert!(stats.all_hits(), "{stats:?}");
    assert_eq!(stats.from_record, USERS, "{stats:?}");
    assert_eq!(warm, uncached, "recorded references must reproduce the run");
    assert_eq!(warm.render(), uncached.render());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_against_a_rerecorded_corpus_is_clean() {
    let dir_a = temp_dir("diff-a");
    let dir_b = temp_dir("diff-b");
    record_fleet(&dir_a);
    record_fleet(&dir_b);
    let diff = corpus::diff(&dir_a, &dir_b).unwrap();
    assert!(diff.is_clean(), "{}", diff.render());
    assert_eq!(diff.matched, USERS as usize);
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
