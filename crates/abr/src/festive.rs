//! The FESTIVE baseline (paper's ref \[2\], as described in Section V-A).
//!
//! "A throughput-based bitrate adaptation approach, which uses the harmonic
//! mean of the last 20 throughput measurements to estimate the available
//! bandwidth, and then selects the highest available bitrate that is just
//! below the estimated bandwidth."

use ecas_net::{BandwidthEstimator, HarmonicMean};
use ecas_sim::controller::{BitrateController, DecisionContext};
use ecas_types::ladder::LevelIndex;

/// The FESTIVE controller.
///
/// Before any throughput history exists the controller starts from the
/// lowest level (a cautious cold start, as real players do).
///
/// # Examples
///
/// ```
/// use ecas_abr::Festive;
/// use ecas_sim::Simulator;
/// use ecas_trace::videos::EvalTraceSpec;
/// use ecas_types::ladder::BitrateLadder;
///
/// let session = EvalTraceSpec::table_v()[1].generate();
/// let sim = Simulator::paper(BitrateLadder::evaluation());
/// let result = sim.run(&session, &mut Festive::new());
/// assert!(result.mean_qoe.value() > 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Festive {
    estimator: HarmonicMean,
    history_len: usize,
}

impl Festive {
    /// Creates the paper's configuration (harmonic mean of the last 20).
    #[must_use]
    pub fn new() -> Self {
        Self::with_window(20)
    }

    /// Creates a FESTIVE variant with a custom estimator window (used by
    /// the window-size ablation).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_window(window: usize) -> Self {
        Self {
            estimator: HarmonicMean::new(window),
            history_len: 0,
        }
    }
}

impl Default for Festive {
    fn default() -> Self {
        Self::new()
    }
}

impl BitrateController for Festive {
    fn select(&mut self, ctx: &DecisionContext<'_>) -> LevelIndex {
        // Feed any new observations since the last decision.
        if ctx.history.len() < self.history_len {
            // The history shrank: a new session started without reset();
            // recover by starting the estimator over.
            self.reset();
        }
        for obs in ctx.history_since(self.history_len) {
            self.estimator.observe(obs.throughput);
        }
        self.history_len = ctx.history.len();

        match self.estimator.estimate() {
            None => ctx.ladder.lowest_level(),
            Some(bw) => ctx.ladder.highest_at_most_or_lowest(bw),
        }
    }

    fn name(&self) -> String {
        "festive".to_string()
    }

    fn reset(&mut self) {
        self.estimator.reset();
        self.history_len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_sim::controller::ThroughputObservation;
    use ecas_types::ids::SegmentIndex;
    use ecas_types::ladder::BitrateLadder;
    use ecas_types::units::{Dbm, Mbps, Seconds};

    fn ctx<'a>(
        ladder: &'a BitrateLadder,
        history: &'a [ThroughputObservation],
    ) -> DecisionContext<'a> {
        DecisionContext {
            segment: SegmentIndex::new(history.len()),
            total_segments: 100,
            now: Seconds::zero(),
            buffer_level: Seconds::new(10.0),
            prev_level: None,
            ladder,
            segment_duration: Seconds::new(2.0),
            buffer_threshold: Seconds::new(30.0),
            playback_started: true,
            history,
            vibration: None,
            signal: Dbm::new(-90.0),
        }
    }

    fn obs(values: &[f64]) -> Vec<ThroughputObservation> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| ThroughputObservation {
                segment: SegmentIndex::new(i),
                throughput: Mbps::new(v),
                completed_at: Seconds::new(i as f64),
            })
            .collect()
    }

    #[test]
    fn cold_start_is_lowest() {
        let ladder = BitrateLadder::evaluation();
        let mut f = Festive::new();
        assert_eq!(f.select(&ctx(&ladder, &[])), ladder.lowest_level());
    }

    #[test]
    fn picks_highest_below_estimate() {
        let ladder = BitrateLadder::evaluation();
        let mut f = Festive::new();
        let history = obs(&[4.0, 4.0, 4.0]);
        let level = f.select(&ctx(&ladder, &history));
        assert_eq!(ladder.bitrate(level), Mbps::new(3.6));
    }

    #[test]
    fn spike_does_not_fool_harmonic_mean() {
        let ladder = BitrateLadder::evaluation();
        let mut f = Festive::new();
        let history = obs(&[2.0, 2.0, 2.0, 2.0, 100.0]);
        let level = f.select(&ctx(&ladder, &history));
        // Harmonic mean of {2,2,2,2,100} = 2.48 -> picks 2.3.
        assert_eq!(ladder.bitrate(level), Mbps::new(2.3));
    }

    #[test]
    fn incremental_feeding_matches_batch() {
        let ladder = BitrateLadder::evaluation();
        let values = [5.0, 7.0, 3.0, 8.0, 6.0];
        // Incremental: select after each new observation.
        let mut inc = Festive::new();
        let mut last_inc = None;
        for k in 1..=values.len() {
            let history = obs(&values[..k]);
            last_inc = Some(inc.select(&ctx(&ladder, &history)));
        }
        // Batch: a fresh controller seeing the whole history at once.
        let mut batch = Festive::new();
        let history = obs(&values);
        let batch_level = batch.select(&ctx(&ladder, &history));
        assert_eq!(last_inc.unwrap(), batch_level);
    }

    #[test]
    fn reset_clears_history() {
        let ladder = BitrateLadder::evaluation();
        let mut f = Festive::new();
        let history = obs(&[30.0, 30.0]);
        let _ = f.select(&ctx(&ladder, &history));
        f.reset();
        assert_eq!(f.select(&ctx(&ladder, &[])), ladder.lowest_level());
    }

    #[test]
    fn below_ladder_floor_falls_back_to_lowest() {
        let ladder = BitrateLadder::evaluation();
        let mut f = Festive::new();
        let history = obs(&[0.05, 0.05]);
        assert_eq!(f.select(&ctx(&ladder, &history)), ladder.lowest_level());
    }
}
