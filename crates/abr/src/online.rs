//! The paper's online bitrate selection algorithm (Algorithm 1).
//!
//! At each segment the controller:
//!
//! 1. estimates the bandwidth with the harmonic mean of past segment
//!    throughputs (Section IV-B);
//! 2. reads the vibration level estimated over the trailing `0.2·W`
//!    seconds of accelerometer data (supplied by the simulator through the
//!    decision context);
//! 3. computes the *reference bitrate* `r_ref = argmin_j` of the Eq. (11)
//!    per-task cost, using the task-energy model (Eqs. 8–10) for `E` and
//!    the QoE model (Eq. 1) for `Q`;
//! 4. smooths the decision (lines 5–9 of Algorithm 1):
//!    * if `r_ref` is **above** the previous level, step up exactly one
//!      level — repeated high references walk the bitrate up gradually;
//!    * if `r_ref` is **below** the previous level, search downward from
//!      the previous level to `r_ref` for the first level whose segment
//!      can download before the buffer drains (`size_j / bw ≤ buffer`);
//!      if none qualifies, use `r_ref` itself;
//!    * otherwise keep the previous level.

use ecas_net::{BandwidthEstimator, HarmonicMean};
use ecas_power::task::{TaskConditions, TaskEnergyModel};
use ecas_qoe::model::QoeModel;
use ecas_sim::controller::{BitrateController, DecisionContext};
use ecas_types::ladder::LevelIndex;
use ecas_types::units::{Mbps, MetersPerSec2, Seconds};

use crate::objective::ObjectiveWeights;

/// The online energy- and context-aware bitrate selector ("Ours").
///
/// # Examples
///
/// ```
/// use ecas_abr::Online;
/// use ecas_sim::Simulator;
/// use ecas_trace::videos::EvalTraceSpec;
/// use ecas_types::ladder::BitrateLadder;
///
/// let session = EvalTraceSpec::table_v()[0].generate();
/// let sim = Simulator::paper(BitrateLadder::evaluation());
/// let result = sim.run(&session, &mut Online::paper());
/// assert!(result.mean_qoe.value() > 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Online {
    weights: ObjectiveWeights,
    energy_model: TaskEnergyModel,
    qoe_model: QoeModel,
    estimator: HarmonicMean,
    history_len: usize,
}

impl Online {
    /// Creates the selector with explicit models and weights.
    #[must_use]
    pub fn new(
        weights: ObjectiveWeights,
        energy_model: TaskEnergyModel,
        qoe_model: QoeModel,
    ) -> Self {
        Self {
            weights,
            energy_model,
            qoe_model,
            estimator: HarmonicMean::festive(),
            history_len: 0,
        }
    }

    /// The paper's configuration: η = 0.5, calibrated models, τ = 2 s.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(
            ObjectiveWeights::paper(),
            TaskEnergyModel::new(ecas_power::model::PowerModel::paper(), Seconds::new(2.0)),
            QoeModel::paper(),
        )
    }

    /// The paper's configuration with a custom `η` (for the Pareto sweep).
    #[must_use]
    pub fn with_eta(eta: f64) -> Self {
        Self::new(
            ObjectiveWeights::new(eta),
            TaskEnergyModel::new(ecas_power::model::PowerModel::paper(), Seconds::new(2.0)),
            QoeModel::paper(),
        )
    }

    /// The objective weights in use.
    #[must_use]
    pub fn weights(&self) -> ObjectiveWeights {
        self.weights
    }

    /// Replaces the objective weights (used by the adaptive-η extension,
    /// which re-weights per decision).
    pub fn set_weights(&mut self, weights: ObjectiveWeights) {
        self.weights = weights;
    }

    /// Overrides the bandwidth-estimator window (default 20, the FESTIVE
    /// setting adopted in Section IV-B) — used by the window-size
    /// ablation.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn estimator_window(mut self, window: usize) -> Self {
        self.estimator = HarmonicMean::new(window);
        self.history_len = 0;
        self
    }

    /// Computes the reference level (line 4 of Algorithm 1): the Eq. (11)
    /// argmin given the bandwidth estimate and vibration level.
    fn reference_level(
        &self,
        ctx: &DecisionContext<'_>,
        bandwidth: Mbps,
        vibration: MetersPerSec2,
    ) -> LevelIndex {
        let conditions = TaskConditions {
            throughput: bandwidth,
            signal: ctx.signal,
            buffer_ahead: ctx.buffer_level.max(ctx.segment_duration),
        };
        let max_bitrate = ctx.ladder.highest().bitrate();
        let e_max = self.energy_model.max_energy(max_bitrate, conditions);
        let q_max = self.qoe_model.max_segment_qoe(max_bitrate, vibration);

        // The reference is switch-penalty-free: including the switch term
        // in the argmin makes the previous level sticky (hysteresis) and
        // defeats the gradual-adjustment rules of lines 5-9, which are the
        // algorithm's own mechanism for smoothing switches. Projected
        // rebuffering, by contrast, belongs in the reference — a level the
        // link cannot sustain must look expensive.
        let mut best = ctx.ladder.lowest_level();
        let mut best_cost = f64::INFINITY;
        for level in ctx.ladder.levels() {
            let bitrate = ctx.ladder.bitrate(level);
            let energy = self.energy_model.energy(bitrate, conditions);
            let qoe = self
                .qoe_model
                .segment_qoe(bitrate, vibration, None, energy.rebuffer);
            let cost = self.weights.cost(energy.total, e_max, qoe, q_max);
            if cost < best_cost {
                best_cost = cost;
                best = level;
            }
        }
        best
    }
}

impl Default for Online {
    fn default() -> Self {
        Self::paper()
    }
}

impl BitrateController for Online {
    fn select(&mut self, ctx: &DecisionContext<'_>) -> LevelIndex {
        if ctx.history.len() < self.history_len {
            // The history shrank: a new session started without reset();
            // recover by starting the estimator over.
            self.reset();
        }
        for obs in ctx.history_since(self.history_len) {
            self.estimator.observe(obs.throughput);
        }
        self.history_len = ctx.history.len();

        let bandwidth = match self.estimator.estimate() {
            Some(bw) => bw,
            // Cold start: be conservative until the first download lands.
            None => return ctx.ladder.lowest_level(),
        };
        let vibration = ctx.vibration.unwrap_or(MetersPerSec2::zero());
        let reference = self.reference_level(ctx, bandwidth, vibration);

        let Some(prev) = ctx.prev_level else {
            return reference;
        };

        if reference > prev {
            // Lines 5-6: gradual increase, one level per segment.
            ctx.ladder.up(prev)
        } else if reference < prev {
            // Lines 7-9: from one level below prev down to reference, take
            // the first (highest) level that downloads before the buffer
            // drains; prev itself is excluded so the bitrate actually
            // decreases toward the reference.
            let buffer = ctx.buffer_level.value();
            let mut chosen = reference;
            for idx in (reference.value()..prev.value()).rev() {
                let level = LevelIndex::new(idx);
                let size = ctx.ladder.bitrate(level).data_over(ctx.segment_duration);
                let dl_time = size.transfer_time(bandwidth.max(Mbps::new(0.01)));
                if dl_time.value() <= buffer {
                    chosen = level;
                    break;
                }
            }
            chosen
        } else {
            prev
        }
    }

    fn name(&self) -> String {
        "ours".to_string()
    }

    fn reset(&mut self) {
        self.estimator.reset();
        self.history_len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_sim::controller::ThroughputObservation;
    use ecas_types::ids::SegmentIndex;
    use ecas_types::ladder::BitrateLadder;
    use ecas_types::units::Dbm;

    struct CtxBuilder {
        history: Vec<ThroughputObservation>,
        buffer: f64,
        prev: Option<usize>,
        vibration: Option<f64>,
        signal: f64,
    }

    impl CtxBuilder {
        fn new() -> Self {
            Self {
                history: Vec::new(),
                buffer: 20.0,
                prev: None,
                vibration: None,
                signal: -90.0,
            }
        }

        fn throughputs(mut self, values: &[f64]) -> Self {
            self.history = values
                .iter()
                .enumerate()
                .map(|(i, &v)| ThroughputObservation {
                    segment: SegmentIndex::new(i),
                    throughput: Mbps::new(v),
                    completed_at: Seconds::new(i as f64),
                })
                .collect();
            self
        }

        fn prev(mut self, level: usize) -> Self {
            self.prev = Some(level);
            self
        }

        fn vibration(mut self, v: f64) -> Self {
            self.vibration = Some(v);
            self
        }

        fn buffer(mut self, b: f64) -> Self {
            self.buffer = b;
            self
        }

        fn build<'a>(&'a self, ladder: &'a BitrateLadder) -> DecisionContext<'a> {
            DecisionContext {
                segment: SegmentIndex::new(self.history.len()),
                total_segments: 200,
                now: Seconds::zero(),
                buffer_level: Seconds::new(self.buffer),
                prev_level: self.prev.map(LevelIndex::new),
                ladder,
                segment_duration: Seconds::new(2.0),
                buffer_threshold: Seconds::new(30.0),
                playback_started: true,
                history: &self.history,
                vibration: self.vibration.map(MetersPerSec2::new),
                signal: Dbm::new(self.signal),
            }
        }
    }

    #[test]
    fn cold_start_is_lowest() {
        let ladder = BitrateLadder::evaluation();
        let mut o = Online::paper();
        let b = CtxBuilder::new();
        assert_eq!(o.select(&b.build(&ladder)), ladder.lowest_level());
    }

    #[test]
    fn high_vibration_lowers_reference() {
        let ladder = BitrateLadder::evaluation();
        let o = Online::paper();
        let calm = CtxBuilder::new().throughputs(&[30.0; 5]).vibration(0.3);
        let shaky = CtxBuilder::new().throughputs(&[30.0; 5]).vibration(6.5);
        let r_calm = o.reference_level(
            &calm.build(&ladder),
            Mbps::new(30.0),
            MetersPerSec2::new(0.3),
        );
        let r_shaky = o.reference_level(
            &shaky.build(&ladder),
            Mbps::new(30.0),
            MetersPerSec2::new(6.5),
        );
        assert!(
            r_shaky < r_calm,
            "vibration should lower the reference: calm {r_calm}, shaky {r_shaky}"
        );
    }

    #[test]
    fn weak_signal_lowers_reference() {
        let ladder = BitrateLadder::evaluation();
        let o = Online::paper();
        let mut strong = CtxBuilder::new().throughputs(&[20.0; 5]).vibration(2.0);
        strong.signal = -85.0;
        let mut weak = CtxBuilder::new().throughputs(&[20.0; 5]).vibration(2.0);
        weak.signal = -118.0;
        let r_strong = o.reference_level(
            &strong.build(&ladder),
            Mbps::new(20.0),
            MetersPerSec2::new(2.0),
        );
        let r_weak = o.reference_level(
            &weak.build(&ladder),
            Mbps::new(20.0),
            MetersPerSec2::new(2.0),
        );
        assert!(
            r_weak <= r_strong,
            "weak signal must not raise the reference"
        );
    }

    #[test]
    fn gradual_increase_one_level_at_a_time() {
        let ladder = BitrateLadder::evaluation();
        let mut o = Online::paper();
        // Plenty of bandwidth, calm context, but previous level was 2:
        // whatever the reference, the step is exactly one level.
        let b = CtxBuilder::new()
            .throughputs(&[40.0; 10])
            .vibration(0.2)
            .prev(2);
        let level = o.select(&b.build(&ladder));
        assert_eq!(level, LevelIndex::new(3));
    }

    #[test]
    fn decrease_respects_buffer_feasibility() {
        let ladder = BitrateLadder::evaluation();
        let mut o = Online::paper();
        // Slow link (1 Mbps), heavy vibration, previous level high, and a
        // comfortable buffer: the first feasible level below prev wins.
        let b = CtxBuilder::new()
            .throughputs(&[1.0; 10])
            .vibration(6.5)
            .prev(13)
            .buffer(25.0);
        let level = o.select(&b.build(&ladder));
        assert!(level < LevelIndex::new(13), "must decrease from the top");
        // Feasibility: size/bw <= buffer for the chosen level.
        let size = ladder.bitrate(level).data_over(Seconds::new(2.0));
        assert!(size.transfer_time(Mbps::new(1.0)).value() <= 25.0);
    }

    #[test]
    fn tiny_buffer_forces_reference_drop() {
        let ladder = BitrateLadder::evaluation();
        let mut o = Online::paper();
        // Nothing from prev down to ref downloads within a 0.2 s buffer at
        // 0.5 Mbps, so the algorithm falls straight to the reference.
        let b = CtxBuilder::new()
            .throughputs(&[0.5; 10])
            .vibration(6.0)
            .prev(13)
            .buffer(0.2);
        let level = o.select(&b.build(&ladder));
        let reference = o.reference_level(
            &CtxBuilder::new()
                .throughputs(&[0.5; 10])
                .vibration(6.0)
                .prev(13)
                .buffer(0.2)
                .build(&ladder),
            Mbps::new(0.5),
            MetersPerSec2::new(6.0),
        );
        assert_eq!(level, reference);
    }

    #[test]
    fn stable_when_reference_equals_prev() {
        let ladder = BitrateLadder::evaluation();
        let o = Online::paper();
        // Find the steady-state reference, then present it as prev.
        let probe = CtxBuilder::new().throughputs(&[12.0; 10]).vibration(3.0);
        let reference = o.reference_level(
            &probe.build(&ladder),
            Mbps::new(12.0),
            MetersPerSec2::new(3.0),
        );
        let mut o2 = Online::paper();
        let b = CtxBuilder::new()
            .throughputs(&[12.0; 10])
            .vibration(3.0)
            .prev(reference.value());
        assert_eq!(o2.select(&b.build(&ladder)), reference);
    }

    #[test]
    fn eta_extremes_move_reference() {
        let ladder = BitrateLadder::evaluation();
        // Pure energy (eta = 1) must pick the bottom; pure QoE (eta = 0)
        // picks at least as high a level in a calm context.
        let energy_only = Online::with_eta(1.0);
        let qoe_only = Online::with_eta(0.0);
        let b = CtxBuilder::new().throughputs(&[30.0; 10]).vibration(0.3);
        let r_energy = energy_only.reference_level(
            &b.build(&ladder),
            Mbps::new(30.0),
            MetersPerSec2::new(0.3),
        );
        let r_qoe =
            qoe_only.reference_level(&b.build(&ladder), Mbps::new(30.0), MetersPerSec2::new(0.3));
        assert_eq!(r_energy, ladder.lowest_level());
        assert!(r_qoe > r_energy);
    }
}
