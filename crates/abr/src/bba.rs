//! The BBA baseline (paper's ref \[24\], as described in Section V-A).
//!
//! "A buffer-based bitrate adaptation approach. BBA uses throughput to
//! control video bitrate at the startup phase. After reaching the steady
//! state, BBA maps the current buffer level to bitrate selection using a
//! linear function" — and "requests the highest bitrate after the buffered
//! data is larger than the pre-defined upper threshold".

use ecas_net::{BandwidthEstimator, HarmonicMean};
use ecas_sim::controller::{BitrateController, DecisionContext};
use ecas_types::ladder::LevelIndex;
use ecas_types::units::{Mbps, Seconds};

/// The BBA controller.
///
/// The buffer map uses a *reservoir* below which the lowest bitrate is
/// requested and a *cushion* above which the highest bitrate is requested;
/// between the two the rate grows linearly with the buffer level
/// (Huang et al., SIGCOMM'14). Defaults: reservoir 5 s, cushion `0.75·B` — BBA "requests the highest
/// bitrate after the buffered data is larger than the pre-defined upper
/// threshold" (Section V-A), which makes it the more aggressive of the
/// two baselines.
#[derive(Debug, Clone)]
pub struct Bba {
    reservoir: Seconds,
    cushion_fraction: f64,
    startup_estimator: HarmonicMean,
    history_len: usize,
    steady: bool,
}

impl Bba {
    /// Creates BBA with the default reservoir (5 s) and cushion (0.75·B).
    #[must_use]
    pub fn new() -> Self {
        Self::with_map(Seconds::new(5.0), 0.75)
    }

    /// Creates BBA with a custom reservoir and cushion fraction of the
    /// buffer threshold.
    ///
    /// # Panics
    ///
    /// Panics if `cushion_fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn with_map(reservoir: Seconds, cushion_fraction: f64) -> Self {
        assert!(
            cushion_fraction > 0.0 && cushion_fraction <= 1.0,
            "cushion fraction must be in (0, 1], got {cushion_fraction}"
        );
        Self {
            reservoir,
            cushion_fraction,
            startup_estimator: HarmonicMean::new(5),
            history_len: 0,
            steady: false,
        }
    }
}

impl Default for Bba {
    fn default() -> Self {
        Self::new()
    }
}

impl BitrateController for Bba {
    fn select(&mut self, ctx: &DecisionContext<'_>) -> LevelIndex {
        if ctx.history.len() < self.history_len {
            // The history shrank: a new session started without reset();
            // recover by starting the estimator over.
            self.reset();
        }
        for obs in ctx.history_since(self.history_len) {
            self.startup_estimator.observe(obs.throughput);
        }
        self.history_len = ctx.history.len();

        let cushion = ctx.buffer_threshold.value() * self.cushion_fraction;
        let buffer = ctx.buffer_level.value();

        // Enter the steady state once the buffer first crosses the
        // cushion; stay there for the rest of the session.
        if buffer >= cushion {
            self.steady = true;
        }

        if !self.steady {
            // Startup: throughput-driven like a rate-based player.
            return match self.startup_estimator.estimate() {
                None => ctx.ladder.lowest_level(),
                Some(bw) => ctx.ladder.highest_at_most_or_lowest(bw),
            };
        }

        // Steady state: linear buffer -> rate map.
        let r_min = ctx.ladder.lowest().bitrate().value();
        let r_max = ctx.ladder.highest().bitrate().value();
        let reservoir = self.reservoir.value();
        let rate = if buffer <= reservoir {
            r_min
        } else if buffer >= cushion {
            r_max
        } else {
            r_min + (r_max - r_min) * (buffer - reservoir) / (cushion - reservoir)
        };
        ctx.ladder.highest_at_most_or_lowest(Mbps::new(rate))
    }

    fn name(&self) -> String {
        "bba".to_string()
    }

    fn reset(&mut self) {
        self.startup_estimator.reset();
        self.history_len = 0;
        self.steady = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_sim::controller::ThroughputObservation;
    use ecas_types::ids::SegmentIndex;
    use ecas_types::ladder::BitrateLadder;
    use ecas_types::units::Dbm;

    fn ctx<'a>(
        ladder: &'a BitrateLadder,
        history: &'a [ThroughputObservation],
        buffer: f64,
    ) -> DecisionContext<'a> {
        DecisionContext {
            segment: SegmentIndex::new(history.len()),
            total_segments: 100,
            now: Seconds::zero(),
            buffer_level: Seconds::new(buffer),
            prev_level: None,
            ladder,
            segment_duration: Seconds::new(2.0),
            buffer_threshold: Seconds::new(30.0),
            playback_started: true,
            history,
            vibration: None,
            signal: Dbm::new(-90.0),
        }
    }

    fn obs(values: &[f64]) -> Vec<ThroughputObservation> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| ThroughputObservation {
                segment: SegmentIndex::new(i),
                throughput: Mbps::new(v),
                completed_at: Seconds::new(i as f64),
            })
            .collect()
    }

    #[test]
    fn startup_uses_throughput() {
        let ladder = BitrateLadder::evaluation();
        let mut b = Bba::new();
        let history = obs(&[4.0, 4.0]);
        let level = b.select(&ctx(&ladder, &history, 6.0));
        assert_eq!(ladder.bitrate(level), Mbps::new(3.6));
    }

    #[test]
    fn steady_state_full_buffer_requests_max() {
        let ladder = BitrateLadder::evaluation();
        let mut b = Bba::new();
        let history = obs(&[2.0]);
        let level = b.select(&ctx(&ladder, &history, 28.0)); // above 0.75*30
        assert_eq!(level, ladder.highest_level());
    }

    #[test]
    fn steady_state_reservoir_requests_min() {
        let ladder = BitrateLadder::evaluation();
        let mut b = Bba::new();
        // Cross into steady state first.
        let history = obs(&[2.0]);
        let _ = b.select(&ctx(&ladder, &history, 28.0));
        // Buffer collapses below the reservoir.
        let level = b.select(&ctx(&ladder, &history, 3.0));
        assert_eq!(level, ladder.lowest_level());
    }

    #[test]
    fn steady_state_map_is_monotone_in_buffer() {
        let ladder = BitrateLadder::evaluation();
        let mut b = Bba::new();
        let history = obs(&[2.0]);
        let _ = b.select(&ctx(&ladder, &history, 28.0)); // enter steady
        let mut prev = 0usize;
        for buffer in [4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 27.5] {
            let level = b.select(&ctx(&ladder, &history, buffer)).value();
            assert!(level >= prev, "map not monotone at buffer {buffer}");
            prev = level;
        }
    }

    #[test]
    fn aggressiveness_vs_festive_on_full_buffer() {
        // The paper notes BBA is more aggressive than FESTIVE once the
        // buffer is full: it requests the max regardless of throughput.
        let ladder = BitrateLadder::evaluation();
        let mut b = Bba::new();
        let history = obs(&[2.0, 2.0, 2.0]); // slow link!
        let level = b.select(&ctx(&ladder, &history, 29.0));
        assert_eq!(level, ladder.highest_level());
    }

    #[test]
    fn reset_returns_to_startup() {
        let ladder = BitrateLadder::evaluation();
        let mut b = Bba::new();
        let history = obs(&[2.0]);
        let _ = b.select(&ctx(&ladder, &history, 28.0));
        b.reset();
        // Fresh startup with no history: lowest level.
        assert_eq!(b.select(&ctx(&ladder, &[], 1.0)), ladder.lowest_level());
    }

    #[test]
    #[should_panic(expected = "cushion fraction")]
    fn rejects_bad_cushion() {
        let _ = Bba::with_map(Seconds::new(5.0), 0.0);
    }
}
