//! Wall-clock instrumentation for any [`BitrateController`].
//!
//! [`Instrumented`] wraps a controller and times every `select`/`decide`
//! call with a span named `abr/decide/<controller name>`, so profiling
//! summaries show how long each algorithm deliberates — the planner's
//! shortest-path search versus the online algorithm's closed form. The
//! wrapper is transparent: same decisions, same reported name.

use ecas_obs::{Probe, SpanGuard};
use ecas_sim::controller::{BitrateController, Decision, DecisionContext};
use ecas_types::ladder::LevelIndex;

/// A [`BitrateController`] decorator that reports decision latency to a
/// [`Probe`].
pub struct Instrumented<'p, C: BitrateController> {
    inner: C,
    probe: &'p dyn Probe,
    /// Cached span label (`abr/decide/<name>`), built once per wrap so the
    /// hot path never allocates.
    span_name: String,
}

impl<'p, C: BitrateController> Instrumented<'p, C> {
    /// Wraps `inner`, reporting to `probe`.
    pub fn new(inner: C, probe: &'p dyn Probe) -> Self {
        let span_name = format!("abr/decide/{}", inner.name());
        Self {
            inner,
            probe,
            span_name,
        }
    }

    /// Unwraps the inner controller.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// The inner controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: BitrateController> BitrateController for Instrumented<'_, C> {
    fn select(&mut self, ctx: &DecisionContext<'_>) -> LevelIndex {
        let _span = SpanGuard::new(self.probe, &self.span_name);
        self.inner.select(ctx)
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Decision {
        let _span = SpanGuard::new(self.probe, &self.span_name);
        self.inner.decide(ctx)
    }

    fn name(&self) -> String {
        self.inner.name()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// [`Instrumented`] over a boxed controller, for call sites that only
/// hold a `Box<dyn BitrateController>` (e.g. the experiment runner).
pub struct InstrumentedBox<'p> {
    inner: Box<dyn BitrateController>,
    probe: &'p dyn Probe,
    span_name: String,
}

impl<'p> InstrumentedBox<'p> {
    /// Wraps `inner`, reporting to `probe`.
    #[must_use]
    pub fn new(inner: Box<dyn BitrateController>, probe: &'p dyn Probe) -> Self {
        let span_name = format!("abr/decide/{}", inner.name());
        Self {
            inner,
            probe,
            span_name,
        }
    }
}

impl BitrateController for InstrumentedBox<'_> {
    fn select(&mut self, ctx: &DecisionContext<'_>) -> LevelIndex {
        let _span = SpanGuard::new(self.probe, &self.span_name);
        self.inner.select(ctx)
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Decision {
        let _span = SpanGuard::new(self.probe, &self.span_name);
        self.inner.decide(ctx)
    }

    fn name(&self) -> String {
        self.inner.name()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_obs::{MemoryRecorder, NULL_PROBE};
    use ecas_sim::controller::FixedLevel;
    use ecas_types::ladder::BitrateLadder;
    use ecas_types::units::{Dbm, Seconds};

    fn ctx(ladder: &BitrateLadder) -> DecisionContext<'_> {
        DecisionContext {
            segment: ecas_types::ids::SegmentIndex::new(0),
            total_segments: 10,
            now: Seconds::zero(),
            buffer_level: Seconds::zero(),
            prev_level: None,
            ladder,
            segment_duration: Seconds::new(2.0),
            buffer_threshold: Seconds::new(30.0),
            playback_started: false,
            history: &[],
            vibration: None,
            signal: Dbm::new(-90.0),
        }
    }

    #[test]
    fn wrapper_is_transparent() {
        let ladder = BitrateLadder::evaluation();
        let mut plain = FixedLevel::highest();
        let mut wrapped = Instrumented::new(FixedLevel::highest(), &NULL_PROBE);
        assert_eq!(wrapped.name(), plain.name());
        assert_eq!(wrapped.select(&ctx(&ladder)), plain.select(&ctx(&ladder)));
        assert_eq!(wrapped.decide(&ctx(&ladder)), plain.decide(&ctx(&ladder)));
    }

    #[test]
    fn spans_are_recorded_per_decision() {
        let ladder = BitrateLadder::evaluation();
        let recorder = MemoryRecorder::new();
        let mut wrapped = Instrumented::new(FixedLevel::highest(), &recorder);
        for _ in 0..3 {
            let _ = wrapped.decide(&ctx(&ladder));
        }
        let snap = recorder.metrics().snapshot();
        assert_eq!(snap.span("abr/decide/youtube").unwrap().count, 3);
    }

    #[test]
    fn boxed_wrapper_is_transparent() {
        let ladder = BitrateLadder::evaluation();
        let recorder = MemoryRecorder::new();
        let boxed: Box<dyn BitrateController> = Box::new(FixedLevel::highest());
        let mut wrapped = InstrumentedBox::new(boxed, &recorder);
        assert_eq!(wrapped.name(), "youtube");
        let _ = wrapped.select(&ctx(&ladder));
        let snap = recorder.metrics().snapshot();
        assert_eq!(snap.span("abr/decide/youtube").unwrap().count, 1);
    }
}
