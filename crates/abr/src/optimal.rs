//! The optimal algorithm (Section IV-A, Fig. 4).
//!
//! With full knowledge of the trace, bitrate selection maps to a shortest
//! path on a layered graph: one layer per task, one node per bitrate
//! level, edge weights given by the Eq. (11) cost of entering a level from
//! the previous one. The path from the source to the sink with minimum
//! total weight is the optimal bitrate plan.
//!
//! Per the paper, the plan's per-task conditions (throughput, signal,
//! vibration) are indexed from the trace by the task's playback slot,
//! making the edge weights separable (see `DESIGN.md`). The plan is then
//! *replayed* through the event simulator so that all approaches are
//! measured under identical mechanics.
//!
//! The paper solves the graph with Dijkstra's algorithm. Eq. (11) weights
//! can be negative, so a constant shift (harmless because all `s → e`
//! paths have the same edge count) makes them non-negative; a
//! topological-order dynamic program cross-checks the result.

use ecas_obs::{names, Probe, NULL_PROBE};
use ecas_power::task::{TaskConditions, TaskEnergyModel};
use ecas_qoe::model::QoeModel;
use ecas_sensors::vibration::vibration_level_in_window;
use ecas_sim::config::PlayerConfig;
use ecas_sim::controller::{BitrateController, DecisionContext};
use ecas_trace::session::SessionTrace;
use ecas_types::ladder::{BitrateLadder, LevelIndex};
use ecas_types::units::{Mbps, MetersPerSec2, Seconds};

use crate::graph::Graph;
use crate::objective::ObjectiveWeights;

/// An optimal bitrate plan for one session.
#[derive(Debug, Clone, PartialEq)]
// ecas-lint: allow(pub-surface, reason = "part of the crate's re-exported public API surface")
pub struct OptimalPlan {
    /// The chosen level for each task, in task order.
    pub levels: Vec<LevelIndex>,
    /// The Eq. (11) objective value of the plan (unshifted).
    pub objective: f64,
}

/// Plans optimal bitrate sequences from full trace knowledge.
#[derive(Debug, Clone)]
pub struct OptimalPlanner {
    weights: ObjectiveWeights,
    energy_model: TaskEnergyModel,
    qoe_model: QoeModel,
    ladder: BitrateLadder,
    config: PlayerConfig,
}

/// Per-task conditions extracted from the trace.
struct TaskContext {
    conditions: TaskConditions,
    vibration: MetersPerSec2,
    e_max: f64,
    q_max: f64,
}

impl OptimalPlanner {
    /// Creates a planner with explicit models.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    #[must_use]
    pub fn new(
        weights: ObjectiveWeights,
        energy_model: TaskEnergyModel,
        qoe_model: QoeModel,
        ladder: BitrateLadder,
        config: PlayerConfig,
    ) -> Self {
        assert!(config.is_valid(), "invalid player config");
        Self {
            weights,
            energy_model,
            qoe_model,
            ladder,
            config,
        }
    }

    /// The paper's configuration (η = 0.5, calibrated models, τ = 2 s,
    /// B = 30 s).
    #[must_use]
    pub fn paper(ladder: BitrateLadder) -> Self {
        let config = PlayerConfig::paper();
        Self::new(
            ObjectiveWeights::paper(),
            TaskEnergyModel::new(
                ecas_power::model::PowerModel::paper(),
                config.segment_duration,
            ),
            QoeModel::paper(),
            ladder,
            config,
        )
    }

    /// The paper's configuration with a custom `η`.
    #[must_use]
    pub fn with_eta(ladder: BitrateLadder, eta: f64) -> Self {
        let config = PlayerConfig::paper();
        Self::new(
            ObjectiveWeights::new(eta),
            TaskEnergyModel::new(
                ecas_power::model::PowerModel::paper(),
                config.segment_duration,
            ),
            QoeModel::paper(),
            ladder,
            config,
        )
    }

    /// Number of tasks for a session.
    fn task_count(&self, session: &SessionTrace) -> usize {
        let tau = self.config.segment_duration.value();
        (session.meta().video_length.value() / tau).ceil() as usize
    }

    /// Extracts the per-task conditions from the trace.
    fn task_contexts(&self, session: &SessionTrace) -> Vec<TaskContext> {
        let tau = self.config.segment_duration;
        let n = self.task_count(session);
        let max_bitrate = self.ladder.highest().bitrate();
        (0..n)
            .map(|i| {
                let start = tau * i as f64;
                let end = start + tau;
                // Mean throughput over the slot (step function average at
                // slot start/end — cheap and adequate at 1 Hz traces).
                let thr = {
                    let samples = session.network().window(start, end);
                    if samples.is_empty() {
                        session.network().throughput_at(start)
                    } else {
                        let sum: f64 = samples.iter().map(|s| s.throughput.value()).sum();
                        Mbps::new(sum / samples.len() as f64)
                    }
                };
                let signal = session.signal().signal_at(start + tau * 0.5);
                // Vibration at playback time, per Eq. 5's trailing window.
                let vib_from = start.saturating_sub(Seconds::new(6.0));
                let vibration = vibration_level_in_window(session.accel(), vib_from, end)
                    .unwrap_or(MetersPerSec2::zero());
                let conditions = TaskConditions {
                    throughput: thr,
                    signal,
                    buffer_ahead: self.config.buffer_threshold,
                };
                let e_max = self
                    .energy_model
                    .max_energy(max_bitrate, conditions)
                    .value();
                let q_max = self
                    .qoe_model
                    .max_segment_qoe(max_bitrate, vibration)
                    .value()
                    .max(1e-6);
                TaskContext {
                    conditions,
                    vibration,
                    e_max,
                    q_max,
                }
            })
            .collect()
    }

    /// Eq. (11) cost of choosing `level` for task `ctx` coming from
    /// `prev` (unshifted).
    fn cost(&self, ctx: &TaskContext, level: LevelIndex, prev: Option<LevelIndex>) -> f64 {
        let bitrate = self.ladder.bitrate(level);
        let energy = self.energy_model.energy(bitrate, ctx.conditions);
        let prev_bitrate = prev.map(|l| self.ladder.bitrate(l));
        let qoe = self
            .qoe_model
            .segment_qoe(bitrate, ctx.vibration, prev_bitrate, energy.rebuffer);
        self.weights.eta() * (energy.total.value() / ctx.e_max)
            - (1.0 - self.weights.eta()) * (qoe.value() / ctx.q_max)
    }

    /// Computes the optimal plan via the Fig. 4 shortest-path mapping.
    ///
    /// # Panics
    ///
    /// Panics if the session is shorter than one segment, or if the
    /// Dijkstra and dynamic-programming solutions disagree (an internal
    /// consistency failure).
    #[must_use]
    pub fn plan(&self, session: &SessionTrace) -> OptimalPlan {
        self.plan_with_probe(session, &NULL_PROBE)
    }

    /// [`OptimalPlanner::plan`] reporting the solver's deterministic work
    /// counters (`abr/labels_expanded`, `abr/labels_pruned`,
    /// `abr/edges_relaxed`) into `probe`. The counters depend only on the
    /// session and configuration, so same-input runs report identical
    /// totals.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`OptimalPlanner::plan`].
    #[must_use]
    pub fn plan_with_probe(&self, session: &SessionTrace, probe: &dyn Probe) -> OptimalPlan {
        let contexts = self.task_contexts(session);
        let n = contexts.len();
        assert!(n > 0, "session shorter than one segment");
        let m = self.ladder.len();
        let shift = self.weights.nonnegative_shift();

        // Node layout: 0 = source, 1 + i*m + j = task i at level j,
        // 1 + n*m = sink. Indices increase along edges (topological).
        let node = |i: usize, j: usize| 1 + i * m + j;
        let sink = 1 + n * m;
        let mut graph = Graph::new(sink + 1);

        if let Some(first_ctx) = contexts.first() {
            for j in 0..m {
                let w = self.cost(first_ctx, LevelIndex::new(j), None) + shift;
                graph.add_edge(0, node(0, j), w);
            }
        }
        for (i, ctx) in contexts.iter().enumerate().skip(1) {
            for jp in 0..m {
                for j in 0..m {
                    let w = self.cost(ctx, LevelIndex::new(j), Some(LevelIndex::new(jp))) + shift;
                    graph.add_edge(node(i - 1, jp), node(i, j), w);
                }
            }
        }
        for j in 0..m {
            graph.add_edge(node(n - 1, j), sink, 0.0);
        }

        let (solved, stats) = graph.dijkstra_path_with_stats(0, sink);
        probe.add(names::ABR_LABELS_EXPANDED, stats.expanded);
        probe.add(names::ABR_LABELS_PRUNED, stats.pruned);
        probe.add(names::ABR_EDGES_RELAXED, stats.relaxed);
        let (cost_dijkstra, path) = solved
            // ecas-lint: allow(panic-safety, reason = "the layered graph built above always connects source to sink")
            .expect("layered graph is connected");
        let (cost_dp, path_dp) = graph
            .dag_shortest_path(0, sink)
            // ecas-lint: allow(panic-safety, reason = "the layered graph built above always connects source to sink")
            .expect("layered graph is connected");
        assert!(
            (cost_dijkstra - cost_dp).abs() < 1e-6,
            "Dijkstra ({cost_dijkstra}) and DP ({cost_dp}) disagree"
        );
        // Paths may differ under exact ties; costs must match.
        debug_assert_eq!(path.len(), path_dp.len());

        let levels: Vec<LevelIndex> = path
            .get(1..path.len().saturating_sub(1))
            .unwrap_or_default()
            .iter()
            .map(|&id| LevelIndex::new((id - 1) % m))
            .collect();
        let objective = cost_dijkstra - shift * n as f64;
        OptimalPlan { levels, objective }
    }

    /// Evaluates the Eq. (11) objective of an arbitrary plan on this
    /// session (for comparisons; the optimal plan minimizes this).
    ///
    /// # Panics
    ///
    /// Panics if `levels` does not have one entry per task.
    #[must_use]
    pub fn objective_of(&self, session: &SessionTrace, levels: &[LevelIndex]) -> f64 {
        let contexts = self.task_contexts(session);
        assert_eq!(
            levels.len(),
            contexts.len(),
            "plan length {} != task count {}",
            levels.len(),
            contexts.len()
        );
        let mut total = 0.0;
        let mut prev: Option<LevelIndex> = None;
        for (ctx, &level) in contexts.iter().zip(levels) {
            total += self.cost(ctx, level, prev);
            prev = Some(level);
        }
        total
    }
}

/// Replays a precomputed plan through the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedController {
    levels: Vec<LevelIndex>,
    label: String,
}

impl PlannedController {
    /// Wraps a plan for replay.
    #[must_use]
    pub fn new(plan: &OptimalPlan) -> Self {
        Self {
            levels: plan.levels.clone(),
            label: "optimal".to_string(),
        }
    }

    /// Wraps an arbitrary level sequence with a custom label.
    #[must_use]
    pub fn from_levels(levels: Vec<LevelIndex>, label: impl Into<String>) -> Self {
        Self {
            levels,
            label: label.into(),
        }
    }
}

impl BitrateController for PlannedController {
    fn select(&mut self, ctx: &DecisionContext<'_>) -> LevelIndex {
        self.levels
            .get(ctx.segment.value())
            .copied()
            // Defensive: a plan shorter than the session falls back to the
            // lowest level rather than panicking mid-replay.
            .unwrap_or_else(|| ctx.ladder.lowest_level())
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_trace::synth::context::{Context, ContextSchedule};
    use ecas_trace::synth::SessionGenerator;
    use ecas_trace::videos::EvalTraceSpec;

    fn session(ctx: Context, secs: f64, seed: u64) -> SessionTrace {
        SessionGenerator::new(
            "opt",
            ContextSchedule::constant(ctx),
            Seconds::new(secs),
            seed,
        )
        .generate()
    }

    #[test]
    fn plan_covers_every_task() {
        let s = session(Context::Walking, 60.0, 1);
        let planner = OptimalPlanner::paper(BitrateLadder::evaluation());
        let plan = planner.plan(&s);
        assert_eq!(plan.levels.len(), 30);
    }

    #[test]
    fn optimal_beats_every_fixed_plan() {
        let s = session(Context::MovingVehicle, 60.0, 2);
        let ladder = BitrateLadder::evaluation();
        let planner = OptimalPlanner::paper(ladder.clone());
        let plan = planner.plan(&s);
        let n = plan.levels.len();
        for j in 0..ladder.len() {
            let fixed = vec![LevelIndex::new(j); n];
            let fixed_obj = planner.objective_of(&s, &fixed);
            assert!(
                plan.objective <= fixed_obj + 1e-9,
                "optimal {} worse than fixed level {j} ({fixed_obj})",
                plan.objective
            );
        }
    }

    #[test]
    fn objective_of_plan_matches_reported() {
        let s = session(Context::Walking, 40.0, 3);
        let planner = OptimalPlanner::paper(BitrateLadder::evaluation());
        let plan = planner.plan(&s);
        let recomputed = planner.objective_of(&s, &plan.levels);
        assert!(
            (plan.objective - recomputed).abs() < 1e-6,
            "{} vs {recomputed}",
            plan.objective
        );
    }

    #[test]
    fn heavy_vibration_pushes_plan_down() {
        let quiet = session(Context::QuietRoom, 120.0, 4);
        let bus = session(Context::MovingVehicle, 120.0, 4);
        let planner = OptimalPlanner::paper(BitrateLadder::evaluation());
        let mean = |plan: &OptimalPlan| {
            plan.levels.iter().map(|l| l.value()).sum::<usize>() as f64 / plan.levels.len() as f64
        };
        let quiet_mean = mean(&planner.plan(&quiet));
        let bus_mean = mean(&planner.plan(&bus));
        assert!(
            bus_mean < quiet_mean,
            "bus plan ({bus_mean}) should sit below quiet plan ({quiet_mean})"
        );
    }

    #[test]
    fn eta_one_plans_all_lowest() {
        let s = session(Context::Walking, 40.0, 5);
        let ladder = BitrateLadder::evaluation();
        let planner = OptimalPlanner::with_eta(ladder.clone(), 1.0);
        let plan = planner.plan(&s);
        assert!(
            plan.levels.iter().all(|&l| l == ladder.lowest_level()),
            "pure-energy plan must pick the bottom everywhere"
        );
    }

    #[test]
    fn eta_zero_plans_high_in_quiet_room() {
        let s = session(Context::QuietRoom, 40.0, 6);
        let ladder = BitrateLadder::evaluation();
        let planner = OptimalPlanner::with_eta(ladder.clone(), 0.0);
        let plan = planner.plan(&s);
        let mean_level =
            plan.levels.iter().map(|l| l.value()).sum::<usize>() as f64 / plan.levels.len() as f64;
        assert!(
            mean_level > 10.0,
            "pure-QoE quiet plan sits high, got {mean_level}"
        );
    }

    #[test]
    fn plan_with_probe_reports_solver_work() {
        let s = session(Context::Walking, 40.0, 8);
        let planner = OptimalPlanner::paper(BitrateLadder::evaluation());
        let recorder = ecas_obs::MemoryRecorder::new();
        let plan = planner.plan_with_probe(&s, &recorder);
        let snapshot = recorder.metrics().snapshot();
        let expanded = snapshot.counter(names::ABR_LABELS_EXPANDED).unwrap();
        let relaxed = snapshot.counter(names::ABR_EDGES_RELAXED).unwrap();
        // Every task layer must settle at least one label, and reaching
        // the sink needs at least one relaxation per settled-path edge.
        assert!(expanded >= plan.levels.len() as u64);
        assert!(relaxed >= expanded - 1);
        assert!(snapshot.counter(names::ABR_LABELS_PRUNED).is_some());
        // The probe is observation-only: the plan itself is unchanged.
        assert_eq!(plan, planner.plan(&s));
    }

    #[test]
    fn planned_controller_replays_plan_through_simulator() {
        let spec = &EvalTraceSpec::table_v()[0];
        let s = spec.generate();
        let ladder = BitrateLadder::evaluation();
        let planner = OptimalPlanner::paper(ladder.clone());
        let plan = planner.plan(&s);
        let sim = ecas_sim::Simulator::paper(ladder);
        let result = sim.run(&s, &mut PlannedController::new(&plan));
        assert_eq!(result.controller, "optimal");
        for (task, &level) in result.tasks.iter().zip(&plan.levels) {
            assert_eq!(task.level, level);
        }
    }

    #[test]
    fn short_plan_falls_back_to_lowest() {
        let s = session(Context::Walking, 20.0, 7);
        let ladder = BitrateLadder::evaluation();
        let mut ctrl =
            PlannedController::from_levels(vec![ladder.highest_level(); 2], "short-plan");
        let sim = ecas_sim::Simulator::paper(ladder.clone());
        let result = sim.run(&s, &mut ctrl);
        assert_eq!(result.tasks.len(), 10);
        assert_eq!(result.tasks[5].level, ladder.lowest_level());
    }
}
