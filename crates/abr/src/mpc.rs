//! A simplified MPC controller (paper's ref \[17\]) — related-work
//! extension.
//!
//! Yin et al. (SIGCOMM'15) pose bitrate selection as model-predictive
//! control: optimize a QoE objective over a lookahead horizon using a
//! bandwidth forecast, apply the first decision, repeat. The full
//! formulation searches all `M^H` plans; we implement the standard
//! committed-plan simplification (evaluate each level held constant over
//! the horizon), which preserves MPC's character — forward simulation of
//! buffer dynamics against a forecast — at negligible cost.
//!
//! Note this baseline optimizes the *classical* QoE objective (quality −
//! switch − rebuffer); it is deliberately energy- and context-blind, like
//! FESTIVE and BBA.

use ecas_net::{BandwidthEstimator, HarmonicMean};
use ecas_qoe::model::QoeModel;
use ecas_sim::controller::{BitrateController, DecisionContext};
use ecas_types::ladder::LevelIndex;
use ecas_types::units::{Mbps, MetersPerSec2, Seconds};

/// The simplified MPC controller.
#[derive(Debug, Clone)]
pub struct Mpc {
    horizon: usize,
    qoe_model: QoeModel,
    estimator: HarmonicMean,
    history_len: usize,
}

impl Mpc {
    /// Creates MPC with the standard 5-segment horizon.
    #[must_use]
    pub fn new() -> Self {
        Self::with_horizon(5)
    }

    /// Creates MPC with a custom horizon.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    #[must_use]
    pub fn with_horizon(horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        Self {
            horizon,
            qoe_model: QoeModel::paper(),
            estimator: HarmonicMean::new(5),
            history_len: 0,
        }
    }

    /// Scores holding `level` for the whole horizon: average per-segment
    /// QoE with predicted stalls, ignoring vibration (context-blind).
    fn plan_score(&self, ctx: &DecisionContext<'_>, level: LevelIndex, bandwidth: Mbps) -> f64 {
        let tau = ctx.segment_duration.value();
        let bitrate = ctx.ladder.bitrate(level);
        let size_mb = bitrate.value() * tau / 8.0;
        let dl_time = size_mb / (bandwidth.value().max(0.01) / 8.0);
        let mut buffer = ctx.buffer_level.value();
        let mut score = 0.0;
        let mut prev = ctx.prev_level.map(|l| ctx.ladder.bitrate(l));
        for _ in 0..self.horizon {
            let stall = (dl_time - buffer).max(0.0);
            buffer = (buffer - dl_time).max(0.0) + tau;
            buffer = buffer.min(ctx.buffer_threshold.value());
            let qoe = self.qoe_model.segment_qoe(
                bitrate,
                MetersPerSec2::zero(),
                prev,
                Seconds::new(stall),
            );
            score += qoe.value();
            prev = Some(bitrate);
        }
        score / self.horizon as f64
    }
}

impl Default for Mpc {
    fn default() -> Self {
        Self::new()
    }
}

impl BitrateController for Mpc {
    fn select(&mut self, ctx: &DecisionContext<'_>) -> LevelIndex {
        if ctx.history.len() < self.history_len {
            // The history shrank: a new session started without reset();
            // recover by starting the estimator over.
            self.reset();
        }
        for obs in ctx.history_since(self.history_len) {
            self.estimator.observe(obs.throughput);
        }
        self.history_len = ctx.history.len();

        let Some(bandwidth) = self.estimator.estimate() else {
            return ctx.ladder.lowest_level();
        };

        let mut best = ctx.ladder.lowest_level();
        let mut best_score = f64::NEG_INFINITY;
        for level in ctx.ladder.levels() {
            let score = self.plan_score(ctx, level, bandwidth);
            if score > best_score {
                best_score = score;
                best = level;
            }
        }
        best
    }

    fn name(&self) -> String {
        "mpc".to_string()
    }

    fn reset(&mut self) {
        self.estimator.reset();
        self.history_len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_sim::controller::ThroughputObservation;
    use ecas_types::ids::SegmentIndex;
    use ecas_types::ladder::BitrateLadder;
    use ecas_types::units::Dbm;

    fn ctx<'a>(
        ladder: &'a BitrateLadder,
        history: &'a [ThroughputObservation],
        buffer: f64,
        prev: Option<usize>,
    ) -> DecisionContext<'a> {
        DecisionContext {
            segment: SegmentIndex::new(history.len()),
            total_segments: 100,
            now: Seconds::zero(),
            buffer_level: Seconds::new(buffer),
            prev_level: prev.map(LevelIndex::new),
            ladder,
            segment_duration: Seconds::new(2.0),
            buffer_threshold: Seconds::new(30.0),
            playback_started: true,
            history,
            vibration: None,
            signal: Dbm::new(-90.0),
        }
    }

    fn obs(values: &[f64]) -> Vec<ThroughputObservation> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| ThroughputObservation {
                segment: SegmentIndex::new(i),
                throughput: Mbps::new(v),
                completed_at: Seconds::new(i as f64),
            })
            .collect()
    }

    #[test]
    fn cold_start_is_lowest() {
        let ladder = BitrateLadder::evaluation();
        let mut m = Mpc::new();
        assert_eq!(
            m.select(&ctx(&ladder, &[], 5.0, None)),
            ladder.lowest_level()
        );
    }

    #[test]
    fn fast_link_picks_high_level() {
        let ladder = BitrateLadder::evaluation();
        let mut m = Mpc::new();
        let history = obs(&[35.0; 6]);
        let level = m.select(&ctx(&ladder, &history, 20.0, Some(13)));
        assert!(level.value() >= 11, "fast link got {level}");
    }

    #[test]
    fn slow_link_small_buffer_avoids_stalls() {
        let ladder = BitrateLadder::evaluation();
        let mut m = Mpc::new();
        let history = obs(&[1.0; 6]);
        let level = m.select(&ctx(&ladder, &history, 2.0, Some(13)));
        // At 1 Mbps the chosen level must not stall the horizon: a 2 s
        // segment at bitrate r needs r*2 seconds of download per 2 s of
        // content, so r <= ~1 keeps the buffer stable.
        assert!(
            ladder.bitrate(level).value() <= 1.5,
            "slow link got {}",
            ladder.bitrate(level)
        );
    }

    #[test]
    fn switch_penalty_discourages_big_jumps() {
        let ladder = BitrateLadder::evaluation();
        let m = Mpc::new();
        // Score of jumping from level 0 to the top vs staying near it.
        let history = obs(&[35.0; 6]);
        let c = ctx(&ladder, &history, 20.0, Some(0));
        let jump = m.plan_score(&c, ladder.highest_level(), Mbps::new(35.0));
        let stay = m.plan_score(&c, LevelIndex::new(1), Mbps::new(35.0));
        // The jump amortizes its one-time switch penalty over the horizon;
        // both must be finite and the comparison meaningful.
        assert!(jump.is_finite() && stay.is_finite());
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn rejects_zero_horizon() {
        let _ = Mpc::with_horizon(0);
    }
}
