//! Signal-aware download deferral — opportunistic scheduling on top of any
//! bitrate controller.
//!
//! The paper's energy model makes bytes dearest exactly when the signal is
//! weakest (Fig. 1a). Its refs \[7, 8\] exploit this by *scheduling*
//! downloads, not just sizing them: with a buffer in hand, a download can
//! wait out a deep fade and fetch the same bytes at a fraction of the
//! energy seconds later. [`SignalDeferral`] wraps any inner controller
//! and defers whenever the signal is below a threshold while the buffer
//! retains a comfortable reserve.

use ecas_sim::controller::{BitrateController, Decision, DecisionContext};
use ecas_types::ladder::LevelIndex;
use ecas_types::units::{Dbm, Seconds};

/// Opportunistic deferral wrapper.
///
/// # Examples
///
/// ```
/// use ecas_abr::{Online, SignalDeferral};
/// use ecas_sim::Simulator;
/// use ecas_trace::videos::EvalTraceSpec;
/// use ecas_types::ladder::BitrateLadder;
///
/// let session = EvalTraceSpec::table_v()[2].generate(); // vehicle trace
/// let sim = Simulator::paper(BitrateLadder::evaluation());
/// let plain = sim.run(&session, &mut Online::paper());
/// let deferred = sim.run(&session, &mut SignalDeferral::wrap(Online::paper()));
/// // Waiting out fades must not cause stalls.
/// assert!(deferred.total_rebuffer.value() < 1.0);
/// # let _ = plain;
/// ```
#[derive(Debug, Clone)]
pub struct SignalDeferral<C> {
    inner: C,
    threshold: Dbm,
    reserve_fraction: f64,
    wait: Seconds,
}

impl<C: BitrateController> SignalDeferral<C> {
    /// Wraps `inner` with the default policy: defer while the signal is
    /// below −104 dBm and more than 60 % of the buffer threshold remains
    /// (the reserve must outlast a worst-case fade-priced download).
    #[must_use]
    pub fn wrap(inner: C) -> Self {
        Self::with_policy(inner, Dbm::new(-104.0), 0.6, Seconds::new(2.0))
    }

    /// Wraps `inner` with an explicit deferral policy.
    ///
    /// # Panics
    ///
    /// Panics if `reserve_fraction` is outside `(0, 1)` or `wait` is zero.
    #[must_use]
    pub fn with_policy(inner: C, threshold: Dbm, reserve_fraction: f64, wait: Seconds) -> Self {
        assert!(
            reserve_fraction > 0.0 && reserve_fraction < 1.0,
            "reserve fraction must be in (0, 1)"
        );
        assert!(!wait.is_zero(), "wait must be positive");
        Self {
            inner,
            threshold,
            reserve_fraction,
            wait,
        }
    }

    /// The wrapped controller.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: BitrateController> BitrateController for SignalDeferral<C> {
    fn select(&mut self, ctx: &DecisionContext<'_>) -> LevelIndex {
        self.inner.select(ctx)
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Decision {
        let reserve = ctx.buffer_threshold.value() * self.reserve_fraction;
        if ctx.playback_started && ctx.signal < self.threshold && ctx.buffer_level.value() > reserve
        {
            Decision::Defer(self.wait)
        } else {
            Decision::Download(self.inner.select(ctx))
        }
    }

    fn name(&self) -> String {
        format!("{}+defer", self.inner.name())
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Online;
    use ecas_sim::controller::FixedLevel;
    use ecas_sim::Simulator;
    use ecas_trace::synth::context::{Context, ContextSchedule};
    use ecas_trace::synth::SessionGenerator;
    use ecas_types::ids::SegmentIndex;
    use ecas_types::ladder::BitrateLadder;
    use ecas_types::units::MetersPerSec2;

    fn ctx<'a>(
        ladder: &'a BitrateLadder,
        buffer: f64,
        signal: f64,
        playing: bool,
    ) -> DecisionContext<'a> {
        DecisionContext {
            segment: SegmentIndex::new(10),
            total_segments: 100,
            now: Seconds::new(30.0),
            buffer_level: Seconds::new(buffer),
            prev_level: None,
            ladder,
            segment_duration: Seconds::new(2.0),
            buffer_threshold: Seconds::new(30.0),
            playback_started: playing,
            history: &[],
            vibration: Some(MetersPerSec2::new(5.0)),
            signal: Dbm::new(signal),
        }
    }

    #[test]
    fn defers_in_deep_fade_with_buffer() {
        let ladder = BitrateLadder::evaluation();
        let mut d = SignalDeferral::wrap(FixedLevel::highest());
        match d.decide(&ctx(&ladder, 20.0, -115.0, true)) {
            Decision::Defer(wait) => assert_eq!(wait, Seconds::new(2.0)),
            other => panic!("expected deferral, got {other:?}"),
        }
    }

    #[test]
    fn downloads_when_signal_strong_or_buffer_low() {
        let ladder = BitrateLadder::evaluation();
        let mut d = SignalDeferral::wrap(FixedLevel::highest());
        assert!(matches!(
            d.decide(&ctx(&ladder, 20.0, -85.0, true)),
            Decision::Download(_)
        ));
        assert!(matches!(
            d.decide(&ctx(&ladder, 5.0, -115.0, true)),
            Decision::Download(_)
        ));
        // Startup phase never defers.
        assert!(matches!(
            d.decide(&ctx(&ladder, 20.0, -115.0, false)),
            Decision::Download(_)
        ));
    }

    #[test]
    fn deferral_saves_radio_energy_on_vehicle_without_stalls() {
        let session = SessionGenerator::new(
            "defer",
            ContextSchedule::constant(Context::MovingVehicle),
            Seconds::new(300.0),
            13,
        )
        .generate();
        let sim = Simulator::paper(BitrateLadder::evaluation());
        let plain = sim.run(&session, &mut Online::paper());
        let deferred = sim.run(&session, &mut SignalDeferral::wrap(Online::paper()));
        assert!(
            deferred.total_rebuffer.value() < 1.0,
            "deferral stalled {}",
            deferred.total_rebuffer
        );
        // Radio energy should not get worse; usually it improves because
        // fewer bytes are bought at fade prices.
        assert!(
            deferred.energy.radio.value() <= plain.energy.radio.value() * 1.05,
            "deferred radio {} vs plain {}",
            deferred.energy.radio,
            plain.energy.radio
        );
    }

    #[test]
    fn fixed_bitrate_with_deferral_buys_cheaper_bytes() {
        // With the bitrate pinned, deferral isolates the scheduling gain:
        // the same bytes are bought at stronger signal on average.
        let session = SessionGenerator::new(
            "defer-fixed",
            ContextSchedule::constant(Context::MovingVehicle),
            Seconds::new(300.0),
            17,
        )
        .generate();
        let sim = Simulator::paper(BitrateLadder::evaluation());
        let mid = ecas_types::ladder::LevelIndex::new(7); // 1.5 Mbps
        let plain = sim.run(&session, &mut FixedLevel::new(mid));
        let deferred = sim.run(&session, &mut SignalDeferral::wrap(FixedLevel::new(mid)));
        assert_eq!(plain.downloaded, deferred.downloaded, "same bytes");
        let mean_signal = |r: &ecas_sim::SessionResult| {
            r.tasks.iter().map(|t| t.signal.value()).sum::<f64>() / r.tasks.len() as f64
        };
        assert!(
            mean_signal(&deferred) >= mean_signal(&plain) - 0.3,
            "deferred bought bytes at weaker signal: {} vs {}",
            mean_signal(&deferred),
            mean_signal(&plain)
        );
    }

    #[test]
    fn name_reflects_wrapping() {
        let d = SignalDeferral::wrap(Online::paper());
        assert_eq!(d.name(), "ours+defer");
    }

    #[test]
    #[should_panic(expected = "reserve fraction")]
    fn rejects_bad_reserve() {
        let _ = SignalDeferral::with_policy(
            FixedLevel::highest(),
            Dbm::new(-100.0),
            1.5,
            Seconds::new(1.0),
        );
    }
}
