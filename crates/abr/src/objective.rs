//! The Eq. (11) optimization objective.
//!
//! Energy and QoE are measured in different units, so the paper normalizes
//! both by their value at the highest ladder bitrate and combines them with
//! the weighted-sum method:
//!
//! ```text
//! w(i, j) = η · E_ij / E_i^max − (1 − η) · Q_ij / Q_i^max
//! ```
//!
//! A smaller `η` weighs QoE more; a larger `η` weighs energy more; the
//! paper's evaluation uses `η = 0.5`.

use ecas_types::units::{Joules, QoeScore};
use serde::{Deserialize, Serialize};

/// The weighting factor `η` of Eq. (11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveWeights {
    eta: f64,
}

impl ObjectiveWeights {
    /// Creates weights with the given `η ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `[0, 1]` or NaN.
    #[must_use]
    pub fn new(eta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&eta),
            "eta must be in [0, 1], got {eta}"
        );
        Self { eta }
    }

    /// The paper's evaluation setting `η = 0.5` (energy and QoE weighted
    /// equally).
    #[must_use]
    pub fn paper() -> Self {
        Self::new(0.5)
    }

    /// The weighting factor `η`.
    #[must_use]
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// The Eq. (11) per-task cost. Lower is better.
    ///
    /// # Panics
    ///
    /// Panics if either normalizer is zero.
    #[must_use]
    pub fn cost(&self, energy: Joules, e_max: Joules, qoe: QoeScore, q_max: QoeScore) -> f64 {
        assert!(!e_max.is_zero(), "energy normalizer must be positive");
        assert!(!q_max.is_zero(), "QoE normalizer must be positive");
        self.eta * (energy / e_max) - (1.0 - self.eta) * (qoe / q_max)
    }

    /// A shift that makes every Eq. (11) cost non-negative, enabling
    /// Dijkstra: costs are at least `−(1−η)·(Q/Q_max)` and `Q/Q_max` is at
    /// most `5` (a task can beat the normalizer when vibration flattens
    /// the top of the quality curve, but never by more than the MOS range).
    #[must_use]
    pub fn nonnegative_shift(&self) -> f64 {
        5.0 * (1.0 - self.eta)
    }
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
// Tests assert exact fixture values; clippy::float_cmp guards library code.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn paper_eta_is_half() {
        assert_eq!(ObjectiveWeights::paper().eta(), 0.5);
    }

    #[test]
    fn cost_tradeoff_directions() {
        let w = ObjectiveWeights::paper();
        let e_max = Joules::new(10.0);
        let q_max = QoeScore::new(4.0);
        // More energy -> higher cost.
        let cheap = w.cost(Joules::new(2.0), e_max, QoeScore::new(3.0), q_max);
        let costly = w.cost(Joules::new(8.0), e_max, QoeScore::new(3.0), q_max);
        assert!(costly > cheap);
        // More QoE -> lower cost.
        let bad = w.cost(Joules::new(5.0), e_max, QoeScore::new(2.0), q_max);
        let good = w.cost(Joules::new(5.0), e_max, QoeScore::new(4.0), q_max);
        assert!(good < bad);
    }

    #[test]
    fn eta_extremes() {
        let e_max = Joules::new(10.0);
        let q_max = QoeScore::new(4.0);
        // eta = 1: pure energy minimization; QoE is ignored.
        let w = ObjectiveWeights::new(1.0);
        assert_eq!(
            w.cost(Joules::new(5.0), e_max, QoeScore::new(1.0), q_max),
            w.cost(Joules::new(5.0), e_max, QoeScore::new(5.0), q_max)
        );
        // eta = 0: pure QoE maximization; energy is ignored.
        let w = ObjectiveWeights::new(0.0);
        assert_eq!(
            w.cost(Joules::new(1.0), e_max, QoeScore::new(3.0), q_max),
            w.cost(Joules::new(9.0), e_max, QoeScore::new(3.0), q_max)
        );
    }

    #[test]
    fn shift_makes_costs_nonnegative() {
        let w = ObjectiveWeights::paper();
        let e_max = Joules::new(10.0);
        let q_max = QoeScore::new(1.0); // adversarial tiny normalizer
        let cost = w.cost(Joules::new(0.0), e_max, QoeScore::new(5.0), q_max);
        assert!(cost + w.nonnegative_shift() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "eta must be in")]
    fn rejects_bad_eta() {
        let _ = ObjectiveWeights::new(1.5);
    }

    #[test]
    #[should_panic(expected = "normalizer must be positive")]
    fn rejects_zero_normalizer() {
        let w = ObjectiveWeights::paper();
        let _ = w.cost(
            Joules::new(1.0),
            Joules::zero(),
            QoeScore::new(3.0),
            QoeScore::new(4.0),
        );
    }
}
