//! Bitrate-adaptation algorithms.
//!
//! This crate implements every approach compared in Section V of the
//! paper, plus two related-work extensions used for ablations:
//!
//! | Controller | Paper role | Module |
//! |---|---|---|
//! | `FixedLevel::highest()` (re-exported) | "Youtube": everything at 5.8 Mbps | `ecas-sim` |
//! | [`Festive`] | Throughput-based baseline (ref \[2\]) | [`festive`] |
//! | [`Bba`] | Buffer-based baseline (ref \[24\]) | [`bba`] |
//! | [`Online`] | **The paper's Algorithm 1** | [`online`] |
//! | [`OptimalPlanner`] | The optimal shortest-path algorithm (Fig. 4) | [`optimal`] |
//! | [`Bola`] | Related-work extension (ref \[5\]) | [`bola`] |
//! | [`Mpc`] | Related-work extension (ref \[17\], simplified) | [`mpc`] |
//! | [`Pid`] | Related-work extension (ref \[4\]) | [`pid`] |
//! | [`RateBased`] | Last-sample strawman | [`rate`] |
//!
//! The optimization objective of Eq. (11) lives in [`objective`]; the
//! generic shortest-path machinery (Dijkstra + DAG dynamic programming
//! cross-check) lives in [`graph`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod bba;
pub mod bola;
pub mod deferral;
pub mod festive;
pub mod graph;
pub mod instrument;
pub mod mpc;
pub mod objective;
pub mod online;
pub mod optimal;
pub mod pid;
pub mod rate;

pub use adaptive::AdaptiveEta;
pub use bba::Bba;
pub use bola::Bola;
pub use deferral::SignalDeferral;
pub use ecas_sim::controller::FixedLevel;
pub use festive::Festive;
pub use instrument::{Instrumented, InstrumentedBox};
pub use mpc::Mpc;
pub use objective::ObjectiveWeights;
pub use online::Online;
pub use optimal::{OptimalPlan, OptimalPlanner, PlannedController};
pub use pid::Pid;
pub use rate::RateBased;
