//! Shortest-path machinery for the optimal algorithm.
//!
//! The paper maps bitrate selection to a shortest path on a layered graph
//! (its Fig. 4) and solves it with Dijkstra's algorithm. Dijkstra requires
//! non-negative edge weights, while the Eq. (11) edge weight
//! `η·E/E_max − (1−η)·Q/Q_max` can be negative; since every `s → e` path
//! in the layered graph has exactly the same number of edges, adding a
//! constant to every weight shifts all path costs equally and preserves
//! the argmin — the caller applies such a shift. As an independent check
//! this module also provides a topological-order dynamic program
//! ([`Graph::dag_shortest_path`]) that handles negative weights natively;
//! the optimal planner cross-checks the two.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ecas_types::TotalF64;

/// A directed graph with `f64` edge weights, stored as adjacency lists.
///
/// # Examples
///
/// ```
/// use ecas_abr::graph::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(0, 2, 5.0);
/// g.add_edge(1, 2, 1.0);
/// g.add_edge(2, 3, 1.0);
/// let (cost, path) = g.dijkstra_path(0, 3).unwrap();
/// assert_eq!(path, vec![0, 1, 2, 3]);
/// assert!((cost - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    adj: Vec<Vec<(usize, f64)>>,
}

/// Deterministic work counters of one Dijkstra run (see
/// [`Graph::dijkstra_with_stats`]). These are the solver's cost measure
/// in the performance-observability layer: comparable across hosts,
/// unlike wall-clock timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DijkstraStats {
    /// Labels settled: heap pops that carried the node's final distance.
    pub expanded: u64,
    /// Stale heap entries skipped without expansion.
    pub pruned: u64,
    /// Edge relaxations that improved a tentative distance.
    pub relaxed: u64,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Adds a directed edge `from → to` with `weight`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `weight` is NaN.
    pub fn add_edge(&mut self, from: usize, to: usize, weight: f64) {
        assert!(from < self.adj.len(), "edge source {from} out of range");
        assert!(to < self.adj.len(), "edge target {to} out of range");
        assert!(!weight.is_nan(), "edge weight must not be NaN");
        if let Some(edges) = self.adj.get_mut(from) {
            edges.push((to, weight));
        }
    }

    /// Dijkstra's algorithm from `src`: returns per-node distance and
    /// predecessor arrays. Unreachable nodes have infinite distance.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or any traversed edge has negative
    /// weight (Dijkstra's precondition).
    #[must_use]
    pub fn dijkstra(&self, src: usize) -> (Vec<f64>, Vec<Option<usize>>) {
        let (dist, prev, _) = self.dijkstra_with_stats(src);
        (dist, prev)
    }

    /// [`Graph::dijkstra`] together with its deterministic work counters
    /// ([`DijkstraStats`]): labels expanded (non-stale heap pops), labels
    /// pruned (stale heap entries skipped) and improving edge
    /// relaxations. The counters depend only on the graph, so same-input
    /// runs report identical work.
    ///
    /// # Panics
    ///
    /// Panics on the same preconditions as [`Graph::dijkstra`].
    #[must_use]
    pub fn dijkstra_with_stats(&self, src: usize) -> (Vec<f64>, Vec<Option<usize>>, DijkstraStats) {
        assert!(src < self.adj.len(), "source {src} out of range");
        let n = self.adj.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut stats = DijkstraStats::default();
        let mut heap: BinaryHeap<Reverse<(TotalF64, usize)>> = BinaryHeap::new();
        if let Some(d0) = dist.get_mut(src) {
            *d0 = 0.0;
        }
        heap.push(Reverse((TotalF64(0.0), src)));
        while let Some(Reverse((TotalF64(d), u))) = heap.pop() {
            if d > dist.get(u).copied().unwrap_or(f64::INFINITY) {
                stats.pruned += 1;
                continue;
            }
            stats.expanded += 1;
            for &(v, w) in self.adj.get(u).into_iter().flatten() {
                assert!(w >= 0.0, "Dijkstra requires non-negative weights, got {w}");
                let nd = d + w;
                let Some(dv) = dist.get_mut(v) else { continue };
                if nd < *dv {
                    stats.relaxed += 1;
                    *dv = nd;
                    if let Some(pv) = prev.get_mut(v) {
                        *pv = Some(u);
                    }
                    heap.push(Reverse((TotalF64(nd), v)));
                }
            }
        }
        (dist, prev, stats)
    }

    /// Shortest `src → dst` path via Dijkstra: `(cost, nodes)`, or `None`
    /// when unreachable.
    #[must_use]
    pub fn dijkstra_path(&self, src: usize, dst: usize) -> Option<(f64, Vec<usize>)> {
        let (dist, prev) = self.dijkstra(src);
        reconstruct(&dist, &prev, src, dst)
    }

    /// [`Graph::dijkstra_path`] with the run's [`DijkstraStats`]. The
    /// stats describe the whole single-source run and are returned even
    /// when `dst` is unreachable.
    #[must_use]
    pub fn dijkstra_path_with_stats(
        &self,
        src: usize,
        dst: usize,
    ) -> (Option<(f64, Vec<usize>)>, DijkstraStats) {
        let (dist, prev, stats) = self.dijkstra_with_stats(src);
        (reconstruct(&dist, &prev, src, dst), stats)
    }

    /// Single-source shortest paths on a DAG whose nodes are already in
    /// topological order (node index increasing along every edge) — the
    /// layered graph of Fig. 4 has this property by construction. Handles
    /// negative weights.
    ///
    /// # Panics
    ///
    /// Panics if some edge goes from a higher-numbered to a lower-numbered
    /// node (i.e. the node numbering is not topological).
    #[must_use]
    pub fn dag_shortest_path(&self, src: usize, dst: usize) -> Option<(f64, Vec<usize>)> {
        let n = self.adj.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<usize>> = vec![None; n];
        if let Some(d0) = dist.get_mut(src) {
            *d0 = 0.0;
        }
        for u in src..n {
            let du = dist.get(u).copied().unwrap_or(f64::INFINITY);
            if du.is_infinite() {
                continue;
            }
            for &(v, w) in self.adj.get(u).into_iter().flatten() {
                assert!(v > u, "node order is not topological: edge {u} -> {v}");
                let nd = du + w;
                let Some(dv) = dist.get_mut(v) else { continue };
                if nd < *dv {
                    *dv = nd;
                    if let Some(pv) = prev.get_mut(v) {
                        *pv = Some(u);
                    }
                }
            }
        }
        reconstruct(&dist, &prev, src, dst)
    }
}

fn reconstruct(
    dist: &[f64],
    prev: &[Option<usize>],
    src: usize,
    dst: usize,
) -> Option<(f64, Vec<usize>)> {
    let cost = dist.get(dst).copied()?;
    if cost.is_infinite() {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = (*prev.get(cur)?)?;
        path.push(cur);
    }
    path.reverse();
    Some((cost, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> {1, 2} -> 3 with asymmetric costs.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 2.0);
        g.add_edge(1, 3, 5.0);
        g.add_edge(2, 3, 1.0);
        g
    }

    #[test]
    fn dijkstra_picks_cheaper_branch() {
        let (cost, path) = diamond().dijkstra_path(0, 3).unwrap();
        assert_eq!(path, vec![0, 2, 3]);
        assert!((cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dag_dp_agrees_with_dijkstra_on_nonnegative() {
        let g = diamond();
        let a = g.dijkstra_path(0, 3).unwrap();
        let b = g.dag_shortest_path(0, 3).unwrap();
        assert_eq!(a.1, b.1);
        assert!((a.0 - b.0).abs() < 1e-12);
    }

    #[test]
    fn dag_dp_handles_negative_weights() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, -0.5);
        g.add_edge(1, 3, -2.0);
        g.add_edge(2, 3, 0.1);
        let (cost, path) = g.dag_shortest_path(0, 3).unwrap();
        assert_eq!(path, vec![0, 1, 3]);
        assert!((cost + 1.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        assert!(g.dijkstra_path(0, 2).is_none());
        assert!(g.dag_shortest_path(0, 2).is_none());
    }

    #[test]
    fn shifting_all_edges_preserves_argmin_path() {
        // Every 0 -> 3 path in the diamond has exactly 2 edges, so adding
        // a constant to every edge cannot change the argmin — the property
        // the optimal planner relies on.
        let mut shifted = Graph::new(4);
        shifted.add_edge(0, 1, 1.0 + 10.0);
        shifted.add_edge(0, 2, 2.0 + 10.0);
        shifted.add_edge(1, 3, 5.0 + 10.0);
        shifted.add_edge(2, 3, 1.0 + 10.0);
        let (_, base_path) = diamond().dijkstra_path(0, 3).unwrap();
        let (_, shifted_path) = shifted.dijkstra_path(0, 3).unwrap();
        assert_eq!(base_path, shifted_path);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn dijkstra_rejects_negative_edges() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, -1.0);
        let _ = g.dijkstra(0);
    }

    #[test]
    #[should_panic(expected = "not topological")]
    fn dag_dp_rejects_backward_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 2, 1.0);
        g.add_edge(2, 1, 1.0);
        let _ = g.dag_shortest_path(0, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_validates_endpoints() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5, 1.0);
    }

    #[test]
    fn larger_random_lattice_dijkstra_equals_dp() {
        // A layered lattice like Fig. 4: 20 layers x 5 levels.
        let layers = 20;
        let levels = 5;
        let node = |layer: usize, lvl: usize| 1 + layer * levels + lvl;
        let n = 2 + layers * levels;
        let sink = n - 1;
        let mut g = Graph::new(n);
        // Deterministic pseudo-random weights.
        let w = |a: usize, b: usize| ((a * 2654435761 + b * 40503) % 1000) as f64 / 100.0;
        for lvl in 0..levels {
            g.add_edge(0, node(0, lvl), w(0, lvl));
        }
        for layer in 0..layers - 1 {
            for a in 0..levels {
                for b in 0..levels {
                    g.add_edge(node(layer, a), node(layer + 1, b), w(node(layer, a), b));
                }
            }
        }
        for lvl in 0..levels {
            g.add_edge(node(layers - 1, lvl), sink, 0.0);
        }
        let (c1, p1) = g.dijkstra_path(0, sink).unwrap();
        let (c2, p2) = g.dag_shortest_path(0, sink).unwrap();
        assert!((c1 - c2).abs() < 1e-9);
        assert_eq!(p1, p2);
    }
}
