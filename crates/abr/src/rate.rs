//! A naive rate-based controller — the strawman most ABR papers compare
//! against: pick the highest bitrate below the *last* observed segment
//! throughput, with no smoothing at all.

use ecas_sim::controller::{BitrateController, DecisionContext};
use ecas_types::ladder::LevelIndex;

/// Last-sample rate-matching controller.
///
/// Overreacts to every throughput fluctuation; included to quantify what
/// FESTIVE's harmonic-mean smoothing buys.
///
/// # Examples
///
/// ```
/// use ecas_abr::RateBased;
/// use ecas_sim::Simulator;
/// use ecas_trace::videos::EvalTraceSpec;
/// use ecas_types::ladder::BitrateLadder;
///
/// let session = EvalTraceSpec::table_v()[2].generate(); // vehicle trace
/// let sim = Simulator::paper(BitrateLadder::evaluation());
/// let naive = sim.run(&session, &mut RateBased::new());
/// let smoothed = sim.run(&session, &mut ecas_abr::Festive::new());
/// // Chases every wiggle: far more switches than FESTIVE's smoothed picks.
/// assert!(naive.switches > 2 * smoothed.switches);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RateBased;

impl RateBased {
    /// Creates the controller.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl BitrateController for RateBased {
    fn select(&mut self, ctx: &DecisionContext<'_>) -> LevelIndex {
        match ctx.history.last() {
            None => ctx.ladder.lowest_level(),
            Some(obs) => ctx.ladder.highest_at_most_or_lowest(obs.throughput),
        }
    }

    fn name(&self) -> String {
        "rate-based".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_sim::controller::ThroughputObservation;
    use ecas_types::ids::SegmentIndex;
    use ecas_types::ladder::BitrateLadder;
    use ecas_types::units::{Dbm, Mbps, Seconds};

    fn ctx<'a>(
        ladder: &'a BitrateLadder,
        history: &'a [ThroughputObservation],
    ) -> DecisionContext<'a> {
        DecisionContext {
            segment: SegmentIndex::new(history.len()),
            total_segments: 10,
            now: Seconds::zero(),
            buffer_level: Seconds::new(10.0),
            prev_level: None,
            ladder,
            segment_duration: Seconds::new(2.0),
            buffer_threshold: Seconds::new(30.0),
            playback_started: true,
            history,
            vibration: None,
            signal: Dbm::new(-90.0),
        }
    }

    #[test]
    fn follows_last_sample_only() {
        let ladder = BitrateLadder::evaluation();
        let mut c = RateBased::new();
        let history = vec![
            ThroughputObservation {
                segment: SegmentIndex::new(0),
                throughput: Mbps::new(30.0),
                completed_at: Seconds::new(1.0),
            },
            ThroughputObservation {
                segment: SegmentIndex::new(1),
                throughput: Mbps::new(1.0),
                completed_at: Seconds::new(2.0),
            },
        ];
        let level = c.select(&ctx(&ladder, &history));
        assert_eq!(ladder.bitrate(level), Mbps::new(1.0));
    }

    #[test]
    fn cold_start_lowest() {
        let ladder = BitrateLadder::evaluation();
        let mut c = RateBased::new();
        assert_eq!(c.select(&ctx(&ladder, &[])), ladder.lowest_level());
    }
}
