//! BOLA (paper's ref \[5\]) — related-work extension.
//!
//! BOLA-BASIC (Spiteri et al., INFOCOM'16) chooses the level maximizing
//! `(V·(u_j + γ·τ) − Q) / S_j`, where `u_j = ln(S_j / S_min)` is the
//! utility of level `j`, `S_j` its segment size, `Q` the buffer level in
//! seconds, `τ` the segment duration, and `V`, `γ` control parameters
//! derived from the buffer threshold. It uses no bandwidth estimate at
//! all — a pure buffer-based Lyapunov scheme, included here as an
//! ablation baseline alongside BBA.

use ecas_sim::controller::{BitrateController, DecisionContext};
use ecas_types::ladder::LevelIndex;

/// The BOLA-BASIC controller.
///
/// # Examples
///
/// ```
/// use ecas_abr::Bola;
/// use ecas_sim::Simulator;
/// use ecas_trace::videos::EvalTraceSpec;
/// use ecas_types::ladder::BitrateLadder;
///
/// let session = EvalTraceSpec::table_v()[1].generate();
/// let sim = Simulator::paper(BitrateLadder::evaluation());
/// let result = sim.run(&session, &mut Bola::new());
/// assert!(result.total_rebuffer.value() < 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bola {
    /// Lyapunov trade-off parameter; derived from the buffer threshold at
    /// the first decision when `None`.
    v: Option<f64>,
    /// Rebuffer-avoidance utility slope.
    gamma: f64,
}

impl Bola {
    /// BOLA with parameters derived from the player's buffer threshold.
    #[must_use]
    pub fn new() -> Self {
        Self {
            v: None,
            gamma: 0.5,
        }
    }

    /// BOLA with explicit `V` and `γ`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `gamma` is not positive.
    #[must_use]
    pub fn with_params(v: f64, gamma: f64) -> Self {
        assert!(v > 0.0, "V must be positive");
        assert!(gamma > 0.0, "gamma must be positive");
        Self { v: Some(v), gamma }
    }
}

impl Default for Bola {
    fn default() -> Self {
        Self::new()
    }
}

impl BitrateController for Bola {
    fn select(&mut self, ctx: &DecisionContext<'_>) -> LevelIndex {
        let tau = ctx.segment_duration.value();
        let s_min = ctx.ladder.lowest().bitrate().value() * tau / 8.0;
        let s_max = ctx.ladder.highest().bitrate().value() * tau / 8.0;
        let u_max = (s_max / s_min).ln();
        // Derive V so the full buffer maps to the highest utility:
        // at Q = B the best score must still be attainable at the top
        // level: V*(u_max + gamma*tau) ≈ B.
        let v = self
            .v
            .unwrap_or(ctx.buffer_threshold.value() / (u_max + self.gamma * tau));

        let q = ctx.buffer_level.value();
        let mut best = ctx.ladder.lowest_level();
        let mut best_score = f64::NEG_INFINITY;
        let mut any_positive = false;
        for level in ctx.ladder.levels() {
            let size = ctx.ladder.bitrate(level).value() * tau / 8.0;
            let utility = (size / s_min).ln();
            let score = (v * (utility + self.gamma * tau) - q) / size;
            if score >= 0.0 {
                any_positive = true;
                if score > best_score {
                    best_score = score;
                    best = level;
                }
            }
        }
        if any_positive {
            best
        } else {
            // Buffer beyond every level's activation point: request the
            // highest utility (BOLA's behaviour at a full buffer).
            ctx.ladder.highest_level()
        }
    }

    fn name(&self) -> String {
        "bola".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_types::ids::SegmentIndex;
    use ecas_types::ladder::BitrateLadder;
    use ecas_types::units::{Dbm, Seconds};

    fn ctx(ladder: &BitrateLadder, buffer: f64) -> DecisionContext<'_> {
        DecisionContext {
            segment: SegmentIndex::new(5),
            total_segments: 100,
            now: Seconds::new(10.0),
            buffer_level: Seconds::new(buffer),
            prev_level: None,
            ladder,
            segment_duration: Seconds::new(2.0),
            buffer_threshold: Seconds::new(30.0),
            playback_started: true,
            history: &[],
            vibration: None,
            signal: Dbm::new(-90.0),
        }
    }

    #[test]
    fn empty_buffer_requests_low() {
        let ladder = BitrateLadder::evaluation();
        let mut b = Bola::new();
        let level = b.select(&ctx(&ladder, 0.5));
        assert!(
            level.value() <= 2,
            "near-empty buffer must pick low, got {level}"
        );
    }

    #[test]
    fn level_monotone_in_buffer() {
        let ladder = BitrateLadder::evaluation();
        let mut b = Bola::new();
        let mut prev = 0usize;
        for buffer in [0.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0] {
            let level = b.select(&ctx(&ladder, buffer)).value();
            assert!(
                level >= prev,
                "not monotone at buffer {buffer}: {level} < {prev}"
            );
            prev = level;
        }
    }

    #[test]
    fn full_buffer_requests_near_max() {
        let ladder = BitrateLadder::evaluation();
        let mut b = Bola::new();
        let level = b.select(&ctx(&ladder, 29.0));
        assert!(level.value() >= ladder.len() - 2, "full buffer got {level}");
    }

    #[test]
    fn explicit_params_are_respected() {
        let ladder = BitrateLadder::evaluation();
        // A tiny V collapses all activation points: even small buffers sit
        // past them, forcing the max-utility fallback.
        let mut b = Bola::with_params(0.01, 0.5);
        let level = b.select(&ctx(&ladder, 20.0));
        assert_eq!(level, ladder.highest_level());
    }

    #[test]
    #[should_panic(expected = "V must be positive")]
    fn rejects_bad_v() {
        let _ = Bola::with_params(0.0, 0.5);
    }
}
