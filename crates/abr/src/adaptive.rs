//! Adaptive-η extension: modulate the Eq. (11) weighting by context.
//!
//! The paper fixes η = 0.5 for the whole session. A natural extension —
//! in the spirit of its "different contexts have different QoE
//! requirements" argument — is to *increase* the energy weight exactly
//! when quality is cheap to sacrifice (heavy vibration) and decrease it
//! when the viewer can tell the difference (quiet room):
//!
//! ```text
//! η(v) = η_min + (η_max − η_min) · clamp(v / v_ref, 0, 1)
//! ```
//!
//! The selector is otherwise Algorithm 1 with the reference recomputed
//! under the per-decision η.

use ecas_sim::controller::{BitrateController, DecisionContext};
use ecas_types::ladder::LevelIndex;
use ecas_types::units::MetersPerSec2;

use crate::objective::ObjectiveWeights;
use crate::online::Online;

/// Algorithm 1 with a vibration-modulated η.
#[derive(Debug, Clone)]
pub struct AdaptiveEta {
    eta_min: f64,
    eta_max: f64,
    v_ref: f64,
    inner: Online,
}

impl AdaptiveEta {
    /// Creates the default adaptive selector: η from 0.35 (quiet room) to
    /// 0.55 (vibration ≥ 6 m/s²). The asymmetric band reflects the η
    /// sweep (`ablation_eta`): above ~0.6 the objective collapses to the
    /// ladder floor and QoE falls off a cliff, while below 0.5 the
    /// quiet-room QoE recovers quickly.
    #[must_use]
    pub fn new() -> Self {
        Self::with_range(0.35, 0.55, 6.0)
    }

    /// Creates an adaptive selector with explicit bounds and reference
    /// vibration.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are outside `[0, 1]`, inverted, or `v_ref` is
    /// not positive.
    #[must_use]
    pub fn with_range(eta_min: f64, eta_max: f64, v_ref: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&eta_min) && (0.0..=1.0).contains(&eta_max),
            "eta bounds must be in [0, 1]"
        );
        assert!(eta_min <= eta_max, "eta_min must not exceed eta_max");
        assert!(v_ref > 0.0, "reference vibration must be positive");
        Self {
            eta_min,
            eta_max,
            v_ref,
            inner: Online::with_eta(eta_min),
        }
    }

    /// The η used for a given vibration level.
    #[must_use]
    pub fn eta_for(&self, vibration: MetersPerSec2) -> f64 {
        let x = (vibration.value() / self.v_ref).clamp(0.0, 1.0);
        self.eta_min + (self.eta_max - self.eta_min) * x
    }
}

impl Default for AdaptiveEta {
    fn default() -> Self {
        Self::new()
    }
}

impl BitrateController for AdaptiveEta {
    fn select(&mut self, ctx: &DecisionContext<'_>) -> LevelIndex {
        let vibration = ctx.vibration.unwrap_or(MetersPerSec2::zero());
        let eta = self.eta_for(vibration);
        self.inner.set_weights(ObjectiveWeights::new(eta));
        self.inner.select(ctx)
    }

    fn name(&self) -> String {
        "adaptive-eta".to_string()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_sim::Simulator;
    use ecas_trace::synth::context::{Context, ContextSchedule};
    use ecas_trace::synth::SessionGenerator;
    use ecas_types::ladder::BitrateLadder;
    use ecas_types::units::Seconds;

    #[test]
    fn eta_interpolates_with_vibration() {
        let a = AdaptiveEta::new();
        assert!((a.eta_for(MetersPerSec2::zero()) - 0.35).abs() < 1e-12);
        assert!((a.eta_for(MetersPerSec2::new(3.0)) - 0.45).abs() < 1e-12);
        assert!((a.eta_for(MetersPerSec2::new(6.0)) - 0.55).abs() < 1e-12);
        // Clamped above the reference.
        assert!((a.eta_for(MetersPerSec2::new(12.0)) - 0.55).abs() < 1e-12);
    }

    #[test]
    fn quiet_room_scores_higher_qoe_than_fixed_eta() {
        let session = SessionGenerator::new(
            "adq",
            ContextSchedule::constant(Context::QuietRoom),
            Seconds::new(120.0),
            5,
        )
        .generate();
        let sim = Simulator::paper(BitrateLadder::evaluation());
        let adaptive = sim.run(&session, &mut AdaptiveEta::new());
        let fixed = sim.run(&session, &mut Online::paper());
        assert!(
            adaptive.mean_qoe >= fixed.mean_qoe,
            "adaptive {} vs fixed {}",
            adaptive.mean_qoe,
            fixed.mean_qoe
        );
    }

    #[test]
    fn vehicle_saves_at_least_as_much_energy_as_fixed_eta() {
        let session = SessionGenerator::new(
            "adv",
            ContextSchedule::constant(Context::MovingVehicle),
            Seconds::new(120.0),
            6,
        )
        .generate();
        let sim = Simulator::paper(BitrateLadder::evaluation());
        let adaptive = sim.run(&session, &mut AdaptiveEta::new());
        let fixed = sim.run(&session, &mut Online::paper());
        assert!(
            adaptive.total_energy().value() <= fixed.total_energy().value() * 1.05,
            "adaptive {} vs fixed {}",
            adaptive.total_energy(),
            fixed.total_energy()
        );
    }

    #[test]
    #[should_panic(expected = "eta_min must not exceed")]
    fn rejects_inverted_bounds() {
        let _ = AdaptiveEta::with_range(0.8, 0.2, 6.0);
    }
}
