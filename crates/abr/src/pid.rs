//! A PID buffer controller (paper's ref \[4\], Qin et al., INFOCOM'17) —
//! related-work extension.
//!
//! The controller regulates the playback buffer toward a setpoint with a
//! discrete PID loop: the control output scales the bandwidth estimate
//! into a target bitrate. When the buffer sits below the setpoint the
//! controller requests less than the link can carry (refilling); above
//! it, slightly more (draining). This reproduces the "fresh look at
//! PID-based rate adaptation" design at the level of detail the paper
//! uses for its other baselines.

use ecas_net::{BandwidthEstimator, HarmonicMean};
use ecas_sim::controller::{BitrateController, DecisionContext};
use ecas_types::ladder::LevelIndex;
use ecas_types::units::Seconds;

/// Discrete PID buffer-tracking controller.
#[derive(Debug, Clone)]
pub struct Pid {
    setpoint: Seconds,
    kp: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    prev_error: Option<f64>,
    estimator: HarmonicMean,
    history_len: usize,
}

impl Pid {
    /// Creates a PID controller with a 20 s buffer setpoint and standard
    /// conservative gains.
    #[must_use]
    pub fn new() -> Self {
        Self::with_gains(Seconds::new(20.0), 0.06, 0.002, 0.08)
    }

    /// Creates a PID controller with explicit setpoint and gains.
    ///
    /// # Panics
    ///
    /// Panics if the setpoint is zero or any gain is negative.
    #[must_use]
    pub fn with_gains(setpoint: Seconds, kp: f64, ki: f64, kd: f64) -> Self {
        assert!(!setpoint.is_zero(), "setpoint must be positive");
        assert!(
            kp >= 0.0 && ki >= 0.0 && kd >= 0.0,
            "gains must be non-negative"
        );
        Self {
            setpoint,
            kp,
            ki,
            kd,
            integral: 0.0,
            prev_error: None,
            estimator: HarmonicMean::new(5),
            history_len: 0,
        }
    }

    /// The buffer setpoint.
    #[must_use]
    pub fn setpoint(&self) -> Seconds {
        self.setpoint
    }
}

impl Default for Pid {
    fn default() -> Self {
        Self::new()
    }
}

impl BitrateController for Pid {
    fn select(&mut self, ctx: &DecisionContext<'_>) -> LevelIndex {
        if ctx.history.len() < self.history_len {
            // The history shrank: a new session started without reset();
            // recover by starting the estimator over.
            self.reset();
        }
        for obs in ctx.history_since(self.history_len) {
            self.estimator.observe(obs.throughput);
        }
        self.history_len = ctx.history.len();

        let Some(bandwidth) = self.estimator.estimate() else {
            return ctx.ladder.lowest_level();
        };

        // Error > 0 when the buffer is below the setpoint (need to refill
        // by requesting below the link rate).
        let error = self.setpoint.value() - ctx.buffer_level.value();
        self.integral = (self.integral + error).clamp(-200.0, 200.0);
        let derivative = match self.prev_error {
            Some(prev) => error - prev,
            None => 0.0,
        };
        self.prev_error = Some(error);

        let control = self.kp * error + self.ki * self.integral + self.kd * derivative;
        // Map the control into a bandwidth multiplier in [0.2, 1.3]:
        // zero error -> request ~95% of the estimate.
        let multiplier = (0.95 - control).clamp(0.2, 1.3);
        let target = bandwidth * multiplier;
        ctx.ladder.highest_at_most_or_lowest(target)
    }

    fn name(&self) -> String {
        "pid".to_string()
    }

    fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
        self.estimator.reset();
        self.history_len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecas_sim::controller::ThroughputObservation;
    use ecas_types::ids::SegmentIndex;
    use ecas_types::ladder::BitrateLadder;
    use ecas_types::units::{Dbm, Mbps};

    fn ctx<'a>(
        ladder: &'a BitrateLadder,
        history: &'a [ThroughputObservation],
        buffer: f64,
    ) -> DecisionContext<'a> {
        DecisionContext {
            segment: SegmentIndex::new(history.len()),
            total_segments: 100,
            now: Seconds::zero(),
            buffer_level: Seconds::new(buffer),
            prev_level: None,
            ladder,
            segment_duration: Seconds::new(2.0),
            buffer_threshold: Seconds::new(30.0),
            playback_started: true,
            history,
            vibration: None,
            signal: Dbm::new(-90.0),
        }
    }

    fn obs(values: &[f64]) -> Vec<ThroughputObservation> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| ThroughputObservation {
                segment: SegmentIndex::new(i),
                throughput: Mbps::new(v),
                completed_at: Seconds::new(i as f64),
            })
            .collect()
    }

    #[test]
    fn low_buffer_requests_below_estimate() {
        let ladder = BitrateLadder::evaluation();
        let mut pid = Pid::new();
        let history = obs(&[6.0; 5]);
        let level = pid.select(&ctx(&ladder, &history, 2.0));
        // Error = 18 -> control ~1.1+ -> multiplier clamps low.
        assert!(
            ladder.bitrate(level).value() <= 2.0,
            "low buffer picked {}",
            ladder.bitrate(level)
        );
    }

    #[test]
    fn buffer_at_setpoint_tracks_estimate() {
        let ladder = BitrateLadder::evaluation();
        let mut pid = Pid::new();
        let history = obs(&[6.0; 5]);
        let level = pid.select(&ctx(&ladder, &history, 20.0));
        // Zero error -> 95% of 6 Mbps -> 5.7 -> picks 4.3.
        assert_eq!(ladder.bitrate(level), Mbps::new(4.3));
    }

    #[test]
    fn full_buffer_may_exceed_estimate() {
        let ladder = BitrateLadder::evaluation();
        let mut pid = Pid::new();
        let history = obs(&[5.0; 5]);
        let below = pid.select(&ctx(&ladder, &history, 20.0)).value();
        let mut pid2 = Pid::new();
        let above = pid2.select(&ctx(&ladder, &history, 29.0)).value();
        assert!(above >= below, "full buffer must not request less");
    }

    #[test]
    fn cold_start_lowest_and_reset_works() {
        let ladder = BitrateLadder::evaluation();
        let mut pid = Pid::new();
        assert_eq!(pid.select(&ctx(&ladder, &[], 0.0)), ladder.lowest_level());
        let history = obs(&[8.0; 5]);
        let _ = pid.select(&ctx(&ladder, &history, 20.0));
        pid.reset();
        assert_eq!(pid.select(&ctx(&ladder, &[], 0.0)), ladder.lowest_level());
    }

    #[test]
    fn integral_is_clamped() {
        let ladder = BitrateLadder::evaluation();
        let mut pid = Pid::new();
        let history = obs(&[6.0; 5]);
        // Hammer the controller with a persistently empty buffer; the
        // integral must not wind up unboundedly.
        for _ in 0..10_000 {
            let _ = pid.select(&ctx(&ladder, &history, 0.0));
        }
        assert!(pid.integral.abs() <= 200.0);
    }

    #[test]
    #[should_panic(expected = "setpoint must be positive")]
    fn rejects_zero_setpoint() {
        let _ = Pid::with_gains(Seconds::zero(), 0.1, 0.0, 0.0);
    }
}
