//! Exhaustive verification of the optimal planner: on instances small
//! enough to enumerate every possible bitrate plan, the shortest-path
//! solution must match the brute-force optimum exactly.

use ecas_abr::{ObjectiveWeights, OptimalPlanner};
use ecas_power::model::PowerModel;
use ecas_power::task::TaskEnergyModel;
use ecas_qoe::model::QoeModel;
use ecas_sim::config::PlayerConfig;
use ecas_trace::synth::context::{Context, ContextSchedule};
use ecas_trace::synth::SessionGenerator;
use ecas_types::ladder::{BitrateLadder, LevelIndex};
use ecas_types::units::{Mbps, Seconds};

/// Enumerates all `m^n` plans and returns the best objective.
fn brute_force_best(
    planner: &OptimalPlanner,
    session: &ecas_trace::session::SessionTrace,
    n: usize,
    m: usize,
) -> (f64, Vec<LevelIndex>) {
    let total = m.pow(n as u32);
    let mut best = f64::INFINITY;
    let mut best_plan = Vec::new();
    for code in 0..total {
        let mut c = code;
        let plan: Vec<LevelIndex> = (0..n)
            .map(|_| {
                let level = LevelIndex::new(c % m);
                c /= m;
                level
            })
            .collect();
        let cost = planner.objective_of(session, &plan);
        if cost < best {
            best = cost;
            best_plan = plan;
        }
    }
    (best, best_plan)
}

fn small_ladder(m: usize) -> BitrateLadder {
    let bitrates: Vec<Mbps> = [0.1, 0.75, 2.3, 5.8][..m]
        .iter()
        .map(|&b| Mbps::new(b))
        .collect();
    BitrateLadder::from_bitrates(bitrates).unwrap()
}

fn planner_for(ladder: BitrateLadder, eta: f64) -> OptimalPlanner {
    let config = PlayerConfig::paper();
    OptimalPlanner::new(
        ObjectiveWeights::new(eta),
        TaskEnergyModel::new(PowerModel::paper(), config.segment_duration),
        QoeModel::paper(),
        ladder,
        config,
    )
}

#[test]
fn shortest_path_matches_exhaustive_enumeration() {
    // 6 tasks x 4 levels = 4096 plans; several seeds and contexts.
    for (seed, ctx) in [
        (1, Context::QuietRoom),
        (2, Context::MovingVehicle),
        (3, Context::Walking),
        (4, Context::MovingVehicle),
    ] {
        let session = SessionGenerator::new(
            "bf",
            ContextSchedule::constant(ctx),
            Seconds::new(12.0), // 6 tasks at tau = 2 s
            seed,
        )
        .generate();
        let planner = planner_for(small_ladder(4), 0.5);
        let plan = planner.plan(&session);
        let (bf_cost, bf_plan) = brute_force_best(&planner, &session, 6, 4);
        assert!(
            (plan.objective - bf_cost).abs() < 1e-9,
            "seed {seed} {ctx:?}: planner {} vs brute force {bf_cost} (bf plan {:?})",
            plan.objective,
            bf_plan
        );
    }
}

#[test]
fn shortest_path_matches_enumeration_across_eta() {
    let session = SessionGenerator::new(
        "bf-eta",
        ContextSchedule::constant(Context::MovingVehicle),
        Seconds::new(10.0), // 5 tasks
        9,
    )
    .generate();
    for eta in [0.0, 0.2, 0.5, 0.8, 1.0] {
        let planner = planner_for(small_ladder(3), eta);
        let plan = planner.plan(&session);
        let (bf_cost, _) = brute_force_best(&planner, &session, 5, 3);
        assert!(
            (plan.objective - bf_cost).abs() < 1e-9,
            "eta {eta}: planner {} vs brute force {bf_cost}",
            plan.objective
        );
    }
}

#[test]
fn single_task_instance_picks_per_task_argmin() {
    let session = SessionGenerator::new(
        "bf-single",
        ContextSchedule::constant(Context::QuietRoom),
        Seconds::new(2.0), // one task
        5,
    )
    .generate();
    let planner = planner_for(small_ladder(4), 0.5);
    let plan = planner.plan(&session);
    assert_eq!(plan.levels.len(), 1);
    let (bf_cost, bf_plan) = brute_force_best(&planner, &session, 1, 4);
    assert_eq!(plan.levels, bf_plan);
    assert!((plan.objective - bf_cost).abs() < 1e-12);
}

#[test]
fn single_level_ladder_has_only_one_plan() {
    let ladder = BitrateLadder::from_bitrates(vec![Mbps::new(1.5)]).unwrap();
    let session = SessionGenerator::new(
        "bf-onelevel",
        ContextSchedule::constant(Context::Walking),
        Seconds::new(8.0),
        6,
    )
    .generate();
    let planner = planner_for(ladder, 0.5);
    let plan = planner.plan(&session);
    assert_eq!(plan.levels, vec![LevelIndex::new(0); 4]);
}
