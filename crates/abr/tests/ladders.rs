//! Controllers must work on any valid ladder, not just the 14-level
//! evaluation ladder (the quality study uses the 6-level Table II ladder,
//! and real deployments have their own).

use ecas_abr::{AdaptiveEta, Bba, Bola, Festive, Mpc, Online, OptimalPlanner, Pid, RateBased};
use ecas_sim::controller::{BitrateController, FixedLevel};
use ecas_sim::Simulator;
use ecas_trace::synth::context::{Context, ContextSchedule};
use ecas_trace::synth::SessionGenerator;
use ecas_types::ladder::BitrateLadder;
use ecas_types::units::{Mbps, Seconds};

fn session(seed: u64) -> ecas_trace::session::SessionTrace {
    SessionGenerator::new(
        "ladders",
        ContextSchedule::constant(Context::MovingVehicle),
        Seconds::new(60.0),
        seed,
    )
    .generate()
}

fn controllers() -> Vec<Box<dyn BitrateController>> {
    vec![
        Box::new(FixedLevel::highest()),
        Box::new(Festive::new()),
        Box::new(Bba::new()),
        Box::new(Online::paper()),
        Box::new(Bola::new()),
        Box::new(Mpc::new()),
        Box::new(Pid::new()),
        Box::new(RateBased::new()),
        Box::new(AdaptiveEta::new()),
    ]
}

#[test]
fn all_controllers_run_on_table_ii_ladder() {
    let s = session(1);
    let sim = Simulator::paper(BitrateLadder::table_ii());
    for mut c in controllers() {
        let r = sim.run(&s, c.as_mut());
        assert_eq!(r.tasks.len(), 30, "{}", c.name());
        assert!(r.total_energy().value() > 0.0);
    }
}

#[test]
fn all_controllers_run_on_a_two_level_ladder() {
    let ladder = BitrateLadder::from_bitrates(vec![Mbps::new(0.5), Mbps::new(4.0)]).unwrap();
    let s = session(2);
    let sim = Simulator::paper(ladder);
    for mut c in controllers() {
        let r = sim.run(&s, c.as_mut());
        assert_eq!(r.tasks.len(), 30, "{}", c.name());
        for t in &r.tasks {
            assert!(t.level.value() < 2);
        }
    }
}

#[test]
fn all_controllers_run_on_a_single_level_ladder() {
    let ladder = BitrateLadder::from_bitrates(vec![Mbps::new(1.0)]).unwrap();
    let s = session(3);
    let sim = Simulator::paper(ladder);
    for mut c in controllers() {
        let r = sim.run(&s, c.as_mut());
        assert!(r.tasks.iter().all(|t| t.level.value() == 0), "{}", c.name());
        assert_eq!(r.switches, 0);
    }
}

#[test]
fn optimal_planner_works_on_table_ii_ladder() {
    let s = session(4);
    let planner = OptimalPlanner::paper(BitrateLadder::table_ii());
    let plan = planner.plan(&s);
    assert_eq!(plan.levels.len(), 30);
    assert!(plan.levels.iter().all(|l| l.value() < 6));
}

#[test]
fn coarse_ladder_costs_some_objective_vs_fine_ladder() {
    // The 14-level ladder refines the 6-level one, so the optimal
    // objective can only improve (weakly) with more choices.
    let s = session(5);
    let coarse = OptimalPlanner::paper(BitrateLadder::table_ii()).plan(&s);
    let fine = OptimalPlanner::paper(BitrateLadder::evaluation()).plan(&s);
    assert!(
        fine.objective <= coarse.objective + 1e-9,
        "fine {} vs coarse {}",
        fine.objective,
        coarse.objective
    );
}
