//! Property-based fuzzing of every controller: for arbitrary decision
//! contexts, a controller must return an in-range level and never panic;
//! and the optimal planner must dominate random plans.

use ecas_abr::{Bba, Bola, Festive, Mpc, Online, OptimalPlanner, Pid, RateBased};
use ecas_sim::controller::{BitrateController, DecisionContext, ThroughputObservation};
use ecas_trace::synth::context::{Context, ContextSchedule};
use ecas_trace::synth::SessionGenerator;
use ecas_types::ids::SegmentIndex;
use ecas_types::ladder::{BitrateLadder, LevelIndex};
use ecas_types::units::{Dbm, Mbps, MetersPerSec2, Seconds};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct FuzzInput {
    throughputs: Vec<f64>,
    buffer: f64,
    prev: Option<usize>,
    vibration: Option<f64>,
    signal: f64,
    segment: usize,
    playback_started: bool,
}

fn fuzz_input() -> impl Strategy<Value = FuzzInput> {
    (
        proptest::collection::vec(0.01f64..120.0, 0..40),
        0.0f64..32.0,
        proptest::option::of(0usize..14),
        proptest::option::of(0.0f64..9.0),
        -130.0f64..-60.0,
        0usize..500,
        any::<bool>(),
    )
        .prop_map(
            |(throughputs, buffer, prev, vibration, signal, segment, playback_started)| FuzzInput {
                throughputs,
                buffer,
                prev,
                vibration,
                signal,
                segment,
                playback_started,
            },
        )
}

fn history(values: &[f64]) -> Vec<ThroughputObservation> {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| ThroughputObservation {
            segment: SegmentIndex::new(i),
            throughput: Mbps::new(v),
            completed_at: Seconds::new(i as f64 * 2.0),
        })
        .collect()
}

fn check_controller(controller: &mut dyn BitrateController, input: &FuzzInput) -> bool {
    let ladder = BitrateLadder::evaluation();
    let hist = history(&input.throughputs);
    let ctx = DecisionContext {
        segment: SegmentIndex::new(input.segment),
        total_segments: 600,
        now: Seconds::new(input.segment as f64 * 2.0),
        buffer_level: Seconds::new(input.buffer),
        prev_level: input.prev.map(LevelIndex::new),
        ladder: &ladder,
        segment_duration: Seconds::new(2.0),
        buffer_threshold: Seconds::new(30.0),
        playback_started: input.playback_started,
        history: &hist,
        vibration: input.vibration.map(MetersPerSec2::new),
        signal: Dbm::new(input.signal),
    };
    let level = controller.select(&ctx);
    level.value() < ladder.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_controllers_return_valid_levels(input in fuzz_input()) {
        prop_assert!(check_controller(&mut Festive::new(), &input));
        prop_assert!(check_controller(&mut Bba::new(), &input));
        prop_assert!(check_controller(&mut Online::paper(), &input));
        prop_assert!(check_controller(&mut Bola::new(), &input));
        prop_assert!(check_controller(&mut Mpc::new(), &input));
        prop_assert!(check_controller(&mut Pid::new(), &input));
        prop_assert!(check_controller(&mut RateBased::new(), &input));
    }

    #[test]
    fn controllers_survive_repeated_decisions(inputs in proptest::collection::vec(fuzz_input(), 1..20)) {
        // Statefulness must not corrupt across arbitrary call sequences.
        let mut online = Online::paper();
        let mut bba = Bba::new();
        let mut pid = Pid::new();
        for input in &inputs {
            prop_assert!(check_controller(&mut online, input));
            prop_assert!(check_controller(&mut bba, input));
            prop_assert!(check_controller(&mut pid, input));
        }
    }

    #[test]
    fn optimal_dominates_random_plans(seed in 0u64..100, plan_seed in 0u64..1000) {
        let session = SessionGenerator::new(
            "fuzz",
            ContextSchedule::constant(Context::MovingVehicle),
            Seconds::new(40.0),
            seed,
        )
        .generate();
        let ladder = BitrateLadder::evaluation();
        let planner = OptimalPlanner::paper(ladder.clone());
        let plan = planner.plan(&session);
        // A deterministic pseudo-random plan of the same length.
        let n = plan.levels.len();
        let random_plan: Vec<LevelIndex> = (0..n)
            .map(|i| {
                let x = plan_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i as u64).wrapping_mul(1442695040888963407));
                LevelIndex::new((x >> 33) as usize % ladder.len())
            })
            .collect();
        let random_cost = planner.objective_of(&session, &random_plan);
        prop_assert!(
            plan.objective <= random_cost + 1e-9,
            "optimal {} beaten by random {}",
            plan.objective,
            random_cost
        );
    }
}
