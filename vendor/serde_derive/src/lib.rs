//! `#[derive(Serialize, Deserialize)]` for the in-tree serde stand-in.
//!
//! The build environment has no registry access, so this proc macro is
//! written against the bare `proc_macro` API (no `syn`, no `quote`): it
//! walks the raw token trees of the item, extracts the shape (named
//! struct, tuple struct, enum) and the container attributes the workspace
//! uses (`transparent`, `from`, `try_from`, `into`), and emits impls of
//! the simplified `serde::Serialize` / `serde::Deserialize` traits as a
//! string that is re-parsed into a `TokenStream`.
//!
//! Supported shapes (everything this workspace derives on):
//! * named-field structs, generic or not, with optional `where` clauses;
//! * tuple structs (newtypes serialize transparently, like real serde);
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged, like real serde's default representation).

use proc_macro::{Delimiter, TokenStream, TokenTree};

// --------------------------------------------------------------------------
// Parsed shape
// --------------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    from: Option<String>,
    try_from: Option<String>,
    into: Option<String>,
}

struct Field {
    name: String,
    /// Field-level `#[serde(default)]`: a missing key deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// The declaration generics verbatim, e.g. `< T : Clone >` (or empty).
    generics_decl: String,
    /// Just the type-parameter idents, e.g. `["T"]`.
    generic_idents: Vec<String>,
    /// The `where` clause predicates verbatim (without `where`), or empty.
    where_clause: String,
    attrs: ContainerAttrs,
    data: Data,
}

// --------------------------------------------------------------------------
// Token-tree parsing
// --------------------------------------------------------------------------

fn is_punct(tt: Option<&TokenTree>, c: char) -> bool {
    matches!(tt, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(tt: Option<&TokenTree>, s: &str) -> bool {
    matches!(tt, Some(TokenTree::Ident(id)) if id.to_string() == s)
}

fn ident_string(tt: Option<&TokenTree>) -> Option<String> {
    match tt {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn tts_to_string(tts: &[TokenTree]) -> String {
    tts.iter()
        .map(std::string::ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Consumes leading `#[...]` attributes, folding `#[serde(...)]` contents
/// into `attrs`. Returns the new cursor position.
fn skip_attrs(tokens: &[TokenTree], mut i: usize, attrs: &mut ContainerAttrs) -> usize {
    while is_punct(tokens.get(i), '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            if g.delimiter() == Delimiter::Bracket {
                parse_serde_attr(&g.stream().into_iter().collect::<Vec<_>>(), attrs);
                i += 2;
                continue;
            }
        }
        break;
    }
    i
}

/// Parses the inside of one `#[...]`; only `serde(...)` is interpreted.
fn parse_serde_attr(inner: &[TokenTree], attrs: &mut ContainerAttrs) {
    if !is_ident(inner.first(), "serde") {
        return;
    }
    let Some(TokenTree::Group(g)) = inner.get(1) else {
        return;
    };
    let items: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut j = 0;
    while j < items.len() {
        let key = match ident_string(items.get(j)) {
            Some(k) => k,
            None => {
                j += 1;
                continue;
            }
        };
        if is_punct(items.get(j + 1), '=') {
            let value = match items.get(j + 2) {
                Some(TokenTree::Literal(lit)) => {
                    let raw = lit.to_string();
                    raw.trim_matches('"').to_string()
                }
                _ => String::new(),
            };
            match key.as_str() {
                "from" => attrs.from = Some(value),
                "try_from" => attrs.try_from = Some(value),
                "into" => attrs.into = Some(value),
                other => panic!("unsupported serde attribute `{other} = ...`"),
            }
            j += 4; // key = "value" ,
        } else {
            match key.as_str() {
                "transparent" => attrs.transparent = true,
                other => panic!("unsupported serde attribute `{other}`"),
            }
            j += 2; // key ,
        }
    }
}

#[derive(Default)]
struct FieldAttrs {
    default: bool,
}

/// Consumes leading `#[...]` attributes on a field or variant, folding
/// `#[serde(...)]` contents into `attrs`. Returns the new cursor position.
fn skip_field_attrs(tokens: &[TokenTree], mut i: usize, attrs: &mut FieldAttrs) -> usize {
    while is_punct(tokens.get(i), '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            if g.delimiter() == Delimiter::Bracket {
                parse_field_serde_attr(&g.stream().into_iter().collect::<Vec<_>>(), attrs);
                i += 2;
                continue;
            }
        }
        break;
    }
    i
}

/// Parses the inside of one field-level `#[...]`; only `serde(...)` is
/// interpreted, and only the attributes the workspace uses are accepted.
fn parse_field_serde_attr(inner: &[TokenTree], attrs: &mut FieldAttrs) {
    if !is_ident(inner.first(), "serde") {
        return;
    }
    let Some(TokenTree::Group(g)) = inner.get(1) else {
        return;
    };
    let items: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut j = 0;
    while j < items.len() {
        let key = match ident_string(items.get(j)) {
            Some(k) => k,
            None => {
                j += 1;
                continue;
            }
        };
        assert!(
            !is_punct(items.get(j + 1), '='),
            "unsupported serde field attribute `{key} = ...`"
        );
        match key.as_str() {
            "default" => attrs.default = true,
            other => panic!("unsupported serde field attribute `{other}`"),
        }
        j += 2; // key ,
    }
}

/// Extracts the type-parameter idents from the tokens inside `<...>`
/// (excluding the angle brackets themselves).
fn generic_param_idents(tokens: &[TokenTree]) -> Vec<String> {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut at_param_start = true;
    let mut k = 0;
    while k < tokens.len() {
        match &tokens[k] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => at_param_start = true,
            TokenTree::Punct(p) if p.as_char() == '\'' && at_param_start => {
                // Lifetime parameter: skip the following ident.
                k += 1;
                at_param_start = false;
            }
            TokenTree::Ident(id) if at_param_start => {
                let s = id.to_string();
                if s == "const" {
                    // `const N : usize` — the next ident is the name.
                    if let Some(name) = ident_string(tokens.get(k + 1)) {
                        idents.push(name);
                    }
                    k += 1;
                } else {
                    idents.push(s);
                }
                at_param_start = false;
            }
            _ => {}
        }
        k += 1;
    }
    idents
}

/// Parses field names (and field-level serde attributes) out of a
/// named-fields brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = FieldAttrs::default();
        i = skip_field_attrs(&tokens, i, &mut attrs);
        if i >= tokens.len() {
            break;
        }
        if is_ident(tokens.get(i), "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let name = ident_string(tokens.get(i)).expect("expected field name");
        names.push(Field {
            name,
            default: attrs.default,
        });
        i += 1;
        assert!(is_punct(tokens.get(i), ':'), "expected `:` after field name");
        i += 1;
        // Consume the type: everything until a top-level comma.
        let mut depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Counts fields in a tuple group by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut count = 1;
    let mut trailing_comma = false;
    for tt in &tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Parses enum variants out of the enum body brace group.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut ignored = ContainerAttrs::default();
        i = skip_attrs(&tokens, i, &mut ignored);
        if i >= tokens.len() {
            break;
        }
        let name = ident_string(tokens.get(i)).expect("expected variant name");
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                i += 1;
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while i < tokens.len() && !is_punct(tokens.get(i), ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = ContainerAttrs::default();
    let mut i = skip_attrs(&tokens, 0, &mut attrs);

    if is_ident(tokens.get(i), "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }

    let kind = ident_string(tokens.get(i)).expect("expected `struct` or `enum`");
    assert!(
        kind == "struct" || kind == "enum",
        "derive target must be a struct or enum, found `{kind}`"
    );
    i += 1;
    let name = ident_string(tokens.get(i)).expect("expected type name");
    i += 1;

    let mut generics_decl = String::new();
    let mut generic_idents = Vec::new();
    if is_punct(tokens.get(i), '<') {
        let start = i;
        let mut depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        generics_decl = tts_to_string(&tokens[start..i]);
        generic_idents = generic_param_idents(&tokens[start + 1..i - 1]);
    }

    let mut where_clause = String::new();
    let capture_where = |tokens: &[TokenTree], mut i: usize| -> (String, usize) {
        if !is_ident(tokens.get(i), "where") {
            return (String::new(), i);
        }
        i += 1;
        let start = i;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g)
                    if g.delimiter() == Delimiter::Brace
                        || g.delimiter() == Delimiter::Parenthesis =>
                {
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => i += 1,
            }
        }
        (tts_to_string(&tokens[start..i]), i)
    };

    let data = if kind == "enum" {
        let (w, ni) = capture_where(&tokens, i);
        where_clause = w;
        i = ni;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    } else {
        match tokens.get(i) {
            // Tuple struct: parens first, then an optional where clause.
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => {
                let (w, ni) = capture_where(&tokens, i);
                where_clause = w;
                i = ni;
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Data::Struct(Fields::Named(parse_named_fields(g.stream())))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                        Data::Struct(Fields::Unit)
                    }
                    other => panic!("expected struct body, found {other:?}"),
                }
            }
        }
    };

    Input {
        name,
        generics_decl,
        generic_idents,
        where_clause,
        attrs,
        data,
    }
}

// --------------------------------------------------------------------------
// Code generation
// --------------------------------------------------------------------------

impl Input {
    /// `Name<T>` — the type with bare parameter idents.
    fn self_ty(&self) -> String {
        if self.generic_idents.is_empty() {
            self.name.clone()
        } else {
            format!("{}<{}>", self.name, self.generic_idents.join(", "))
        }
    }

    /// Builds the full `where` clause for a generated impl.
    fn where_for(&self, trait_path: &str, extra: &[String]) -> String {
        let mut parts: Vec<String> = Vec::new();
        // Source where clauses may carry a trailing comma; strip it so the
        // joined predicate list stays well-formed.
        let original = self.where_clause.trim().trim_end_matches(',').trim();
        if !original.is_empty() {
            parts.push(original.to_string());
        }
        for p in &self.generic_idents {
            parts.push(format!("{p}: {trait_path}"));
        }
        parts.extend_from_slice(extra);
        if parts.is_empty() {
            String::new()
        } else {
            format!("where {}", parts.join(", "))
        }
    }
}

fn gen_serialize(input: &Input) -> String {
    let ty = input.self_ty();
    let name = &input.name;
    let mut extra_bounds = Vec::new();

    let body = if let Some(into_ty) = &input.attrs.into {
        extra_bounds.push(format!("{into_ty}: ::serde::Serialize"));
        extra_bounds.push(format!(
            "Self: ::std::clone::Clone + ::std::convert::Into<{into_ty}>"
        ));
        format!(
            "let __into: {into_ty} = \
             ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__into)"
        )
    } else {
        match &input.data {
            Data::Struct(Fields::Named(fields)) if input.attrs.transparent => {
                assert_eq!(fields.len(), 1, "transparent struct must have one field");
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            }
            Data::Struct(Fields::Named(fields)) => {
                let mut s = format!(
                    "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::with_capacity({});\n",
                    fields.len()
                );
                for f in fields {
                    let f = &f.name;
                    s.push_str(&format!(
                        "__obj.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    ));
                }
                s.push_str("::serde::Value::Object(__obj)");
                s
            }
            // Newtypes (and explicit transparent) serialize as the inner
            // value, matching real serde's newtype behavior.
            Data::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Data::Struct(Fields::Tuple(n)) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!(
                    "::serde::Value::Array(::std::vec![{}])",
                    items.join(", ")
                )
            }
            Data::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
            Data::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => arms.push_str(&format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                        )),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Array(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            arms.push_str(&format!(
                                "{name}::{vn}({binds_list}) => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), {payload})]),\n",
                                binds_list = binds.join(", ")
                            ));
                        }
                        Fields::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let mut payload = format!(
                                "let mut __vobj: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Value)> = ::std::vec::Vec::with_capacity({});\n",
                                fields.len()
                            );
                            for f in fields {
                                let f = &f.name;
                                payload.push_str(&format!(
                                    "__vobj.push((::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})));\n"
                                ));
                            }
                            arms.push_str(&format!(
                                "{name}::{vn} {{ {binds} }} => {{\n{payload}\
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(__vobj))])\n}},\n"
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };

    let where_clause = input.where_for("::serde::Serialize", &extra_bounds);
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {ty} {where_clause} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}",
        generics = input.generics_decl,
    )
}

fn gen_deserialize(input: &Input) -> String {
    let ty = input.self_ty();
    let name = &input.name;
    let mut extra_bounds = Vec::new();

    let body = if let Some(from_ty) = &input.attrs.from {
        extra_bounds.push(format!("{from_ty}: ::serde::Deserialize"));
        extra_bounds.push(format!("Self: ::std::convert::From<{from_ty}>"));
        format!(
            "let __raw: {from_ty} = ::serde::Deserialize::from_value(__v)?;\n\
             ::std::result::Result::Ok(::std::convert::From::from(__raw))"
        )
    } else if let Some(try_ty) = &input.attrs.try_from {
        extra_bounds.push(format!("{try_ty}: ::serde::Deserialize"));
        extra_bounds.push(format!("Self: ::std::convert::TryFrom<{try_ty}>"));
        extra_bounds.push(format!(
            "<Self as ::std::convert::TryFrom<{try_ty}>>::Error: ::std::fmt::Display"
        ));
        format!(
            "let __raw: {try_ty} = ::serde::Deserialize::from_value(__v)?;\n\
             ::std::convert::TryFrom::try_from(__raw)\
             .map_err(|__e| ::serde::de::Error::custom(::std::format!(\"{{}}\", __e)))"
        )
    } else {
        match &input.data {
            Data::Struct(Fields::Named(fields)) if input.attrs.transparent => {
                assert_eq!(fields.len(), 1, "transparent struct must have one field");
                format!(
                    "::std::result::Result::Ok({name} {{ {f}: \
                     ::serde::Deserialize::from_value(__v)? }})",
                    f = fields[0].name
                )
            }
            Data::Struct(Fields::Named(fields)) => {
                let mut s = format!("let __obj = ::serde::de::as_object(__v, \"{name}\")?;\n");
                s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
                for f in fields {
                    let accessor = if f.default {
                        "field_or_default"
                    } else {
                        "field"
                    };
                    let f = &f.name;
                    s.push_str(&format!(
                        "{f}: ::serde::de::{accessor}(__obj, \"{name}\", \"{f}\")?,\n"
                    ));
                }
                s.push_str("})");
                s
            }
            Data::Struct(Fields::Tuple(1)) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
            ),
            Data::Struct(Fields::Tuple(n)) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                    .collect();
                format!(
                    "let __items = ::serde::de::as_array(__v, \"{name}\", {n})?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
            Data::Struct(Fields::Unit) => {
                format!("::std::result::Result::Ok({name})")
            }
            Data::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut payload_arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            unit_arms.push_str(&format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                            ));
                        }
                        Fields::Tuple(1) => {
                            payload_arms.push_str(&format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__payload)?)),\n"
                            ));
                        }
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&__items[{k}])?")
                                })
                                .collect();
                            payload_arms.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let __items = ::serde::de::as_array(\
                                 __payload, \"{name}::{vn}\", {n})?;\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n}},\n",
                                items.join(", ")
                            ));
                        }
                        Fields::Named(fields) => {
                            let mut arm = format!(
                                "\"{vn}\" => {{\n\
                                 let __vobj = ::serde::de::as_object(\
                                 __payload, \"{name}::{vn}\")?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{\n"
                            );
                            for f in fields {
                                let accessor = if f.default {
                                    "field_or_default"
                                } else {
                                    "field"
                                };
                                let f = &f.name;
                                arm.push_str(&format!(
                                    "{f}: ::serde::de::{accessor}(__vobj, \"{name}::{vn}\", \
                                     \"{f}\")?,\n"
                                ));
                            }
                            arm.push_str("})\n},\n");
                            payload_arms.push_str(&arm);
                        }
                    }
                }
                format!(
                    "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                     {unit_arms}\
                     __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                     ::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                     let (__k, __payload) = &__entries[0];\n\
                     match __k.as_str() {{\n\
                     {payload_arms}\
                     __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                     ::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                     }}\n}},\n\
                     __other => ::std::result::Result::Err(\
                     ::serde::de::Error::expected(\"enum {name}\", __other)),\n\
                     }}"
                )
            }
        }
    };

    let where_clause = input.where_for("::serde::Deserialize", &extra_bounds);
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Deserialize for {ty} {where_clause} {{\n\
         fn from_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}",
        generics = input.generics_decl,
    )
}

// --------------------------------------------------------------------------
// Entry points
// --------------------------------------------------------------------------

/// Prints generated impls to stderr when `SERDE_DERIVE_DEBUG` names the
/// type being derived (or `*`). Purely a troubleshooting aid.
fn debug_dump(name: &str, generated: &str) {
    if let Ok(filter) = std::env::var("SERDE_DERIVE_DEBUG") {
        if filter == "*" || filter == name {
            eprintln!("=== serde_derive for {name} ===\n{generated}\n===");
        }
    }
}

/// Derives the simplified `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let generated = gen_serialize(&parsed);
    debug_dump(&parsed.name, &generated);
    generated
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the simplified `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let generated = gen_deserialize(&parsed);
    debug_dump(&parsed.name, &generated);
    generated
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}
