//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: [`rngs::SmallRng`] (the same
//! xoshiro256++ generator rand 0.8 uses on 64-bit targets, seeded with
//! SplitMix64 exactly like `rand_xoshiro`), the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`, and [`SeedableRng::seed_from_u64`].
//! Sampling formulas mirror rand 0.8 (53-bit standard floats, `[1, 2)`
//! mantissa trick for uniform ranges) so seeded streams are stable and
//! well distributed.

#![forbid(unsafe_code)]

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion (the
    /// rand 0.8 / rand_xoshiro behavior).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// A type that can be sampled uniformly from a generator (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), like rand's Standard.
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can produce uniform samples (the `SampleRange` of real
/// rand).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
    // rand 0.8's UniformFloat::sample_single: 52 random mantissa bits
    // give `value1_2` in [1, 2), shifted down to `value0_1` in [0, 1) and
    // scaled as `value0_1 * scale + low` (separate multiply and add, not
    // a fused mul_add — the operation order affects rounding and thus the
    // exact stream). On the rare rounding collision with `high`, shrink
    // the scale and redraw, like the reference's retry loop.
    let mut scale = high - low;
    loop {
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        let value0_1 = value1_2 - 1.0;
        let res = value0_1 * scale + low;
        if res < high {
            return res;
        }
        scale = f64::from_bits(scale.to_bits() - 1);
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        uniform_f64(rng, self.start, self.end)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "empty range in gen_range");
        uniform_f64(rng, low, high).min(high)
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply range reduction (Lemire), like rand.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty range in gen_range");
                let span = (high as i128 - low as i128 + 1) as u128;
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from the range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The small, fast generator: xoshiro256++ (what rand 0.8 uses for
    /// `SmallRng` on 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it, like
            // rand_xoshiro does.
            if s.iter().all(|&x| x == 0) {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&f), "{f}");
            let u = rng.gen_range(10u64..20);
            assert!((10..20).contains(&u), "{u}");
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i), "{i}");
        }
    }

    #[test]
    fn uniform_f64_covers_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }
}
