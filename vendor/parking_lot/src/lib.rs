//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the parking_lot API shape the
//! workspace uses: `lock()` / `read()` / `write()` return guards directly
//! instead of a poison `Result`. A poisoned std lock only occurs after a
//! panic in another holder, in which case continuing with the inner data
//! matches parking_lot's (non-poisoning) semantics.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// See [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the inner value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// See [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// See [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn mutex_is_shareable_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
