//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking API subset the workspace uses —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — with a
//! simple wall-clock measurement loop: warm up, calibrate iterations per
//! sample, then report mean / min / max over the sample set.
//!
//! Like the real crate, running under `cargo test` (no `--bench` flag in
//! the arguments) executes each benchmark body once so test runs stay
//! fast; full measurement happens under `cargo bench`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    quick: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            quick: true,
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments: full measurement when
    /// invoked with `--bench` (what `cargo bench` passes), single-shot
    /// smoke mode otherwise (what `cargo test` does).
    #[must_use]
    pub fn from_args() -> Self {
        Self {
            quick: !std::env::args().any(|a| a == "--bench"),
            ..Self::default()
        }
    }

    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.quick, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, self.criterion.quick, samples, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, self.criterion.quick, samples, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    #[must_use]
    pub fn new(function: &str, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function` arguments.
pub trait IntoBenchmarkId {
    /// Converts self into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    mode: BencherMode,
    /// Mean nanoseconds per iteration, filled after `iter` returns.
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

enum BencherMode {
    /// Run the body once (test mode).
    Quick,
    /// Timed run with the given sample count.
    Measure { samples: usize },
}

impl Bencher {
    /// Calls `f` repeatedly, timing it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            BencherMode::Quick => {
                black_box(f());
            }
            BencherMode::Measure { samples } => {
                // Warm up and calibrate: how many iterations fit ~5 ms?
                let warmup_budget = Duration::from_millis(50);
                let warmup_start = Instant::now();
                let mut warmup_iters: u64 = 0;
                while warmup_start.elapsed() < warmup_budget {
                    black_box(f());
                    warmup_iters += 1;
                }
                let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
                let iters_per_sample = ((0.005 / per_iter).ceil() as u64).max(1);

                let mut means = Vec::with_capacity(samples);
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(f());
                    }
                    means.push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
                }
                self.mean_ns = means.iter().sum::<f64>() / means.len() as f64;
                self.min_ns = means.iter().copied().fold(f64::INFINITY, f64::min);
                self.max_ns = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            }
        }
    }
}

fn run_benchmark(label: &str, quick: bool, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        mode: if quick {
            BencherMode::Quick
        } else {
            BencherMode::Measure { samples }
        },
        mean_ns: f64::NAN,
        min_ns: f64::NAN,
        max_ns: f64::NAN,
    };
    f(&mut bencher);
    if quick {
        println!("{label}: ok (smoke run)");
    } else if bencher.mean_ns.is_nan() {
        println!("{label}: no measurement (Bencher::iter never called)");
    } else {
        println!(
            "{label}\n    time: [{} {} {}]",
            format_ns(bencher.min_ns),
            format_ns(bencher.mean_ns),
            format_ns(bencher.max_ns)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function calling each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_mode_runs_body_once() {
        let mut calls = 0;
        let mut criterion = super::Criterion::default();
        criterion.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_reports_numbers() {
        let mut criterion = super::Criterion {
            quick: false,
            sample_size: 3,
        };
        let mut ran = false;
        criterion.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn format_scales() {
        assert!(super::format_ns(12.3).contains("ns"));
        assert!(super::format_ns(12_300.0).contains("µs"));
        assert!(super::format_ns(12_300_000.0).contains("ms"));
    }
}
