//! Offline stand-in for `crossbeam`'s scoped threads.
//!
//! Implements [`scope`] over `std::thread::scope`, preserving the
//! crossbeam API shape: the closure receives a [`Scope`], spawn closures
//! take an (unused) `&Scope` argument, and `scope` returns
//! `Err(panic payload)` if any spawned thread panicked instead of
//! propagating the unwind.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle passed to the scope closure; spawns threads bound to the scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a `&Scope` for
    /// crossbeam compatibility (nested spawning), typically ignored as
    /// `|_|`.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        })
    }
}

/// Runs `f` with a [`Scope`]; joins all spawned threads before returning.
///
/// # Errors
///
/// Returns the first panic payload if the closure or any spawned thread
/// panicked (matching crossbeam, which collects panics instead of
/// unwinding through `scope`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        })
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_run_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn panics_become_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
