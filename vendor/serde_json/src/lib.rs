//! Offline stand-in for `serde_json`: JSON text ⇄ [`serde::Value`].
//!
//! Implements the exact API surface the workspace uses — `to_string`,
//! `to_string_pretty`, `to_writer`, `to_writer_pretty`, `from_str`,
//! `from_reader`, `to_value`, `from_value` and [`Value`] — over the
//! simplified serde data model. Floats round-trip exactly: serialization
//! uses Rust's shortest-exact formatting (with a `.0` suffix for integral
//! values), and the parser reads numbers back with `f64::from_str`.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

pub use serde::Value;

mod parse;

/// JSON (de)serialization failure.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Self::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self::new(format!("io error: {e}"))
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::ser::to_compact_string(&value.to_value()))
}

/// Serializes a value to pretty-printed JSON text (2-space indent).
///
/// # Errors
///
/// Never fails for the types in this workspace.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::ser::to_pretty_string(&value.to_value()))
}

/// Serializes a value as compact JSON into a writer.
///
/// # Errors
///
/// Returns an error if the writer fails.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serializes a value as pretty-printed JSON into a writer.
///
/// # Errors
///
/// Returns an error if the writer fails.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses a value from a reader producing JSON text.
///
/// # Errors
///
/// Returns an error on I/O failure, malformed JSON or a shape mismatch.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

/// Converts any serializable value into a [`Value`].
///
/// # Errors
///
/// Never fails for the types in this workspace.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Converts a [`Value`] into a concrete type.
///
/// # Errors
///
/// Returns an error on a shape mismatch.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"hi\"ho").unwrap(), "\"hi\\\"ho\"");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            std::f64::consts::PI,
            1e-300,
            1e300,
            -123.456_789_012_345_67,
        ] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {text} -> {back}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&text).unwrap(), v);

        let pairs = vec![("a".to_string(), 1.0f64), ("b".to_string(), 2.5)];
        let text = to_string(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(String, f64)>>(&text).unwrap(), pairs);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str::<bool>("troo").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<f64>("1.2.3").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("").is_err());
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1u64, 2];
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "[\n  1,\n  2\n]");
    }
}
