//! A recursive-descent JSON parser producing [`serde::Value`].

use serde::Value;

use crate::Error;

/// Maximum nesting depth, guarding against stack overflow on hostile input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else {
            let digits_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == digits_start {
                return Err(self.err("invalid number"));
            }
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("invalid number: missing fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("invalid number: missing exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}
