//! String generation from a small regex subset.
//!
//! Supports the patterns the workspace tests use: sequences of atoms
//! (`.`, `[class]` with ranges and `^` negation, or literal characters)
//! each followed by an optional quantifier (`*`, `+`, `?`, `{m}`,
//! `{m,n}`). Anything else (alternation, groups, anchors) panics with a
//! clear message so unsupported patterns fail loudly instead of
//! generating the wrong distribution.

use crate::test_runner::TestRng;

#[derive(Debug)]
enum Atom {
    /// `.` — any printable character (plus a few multi-byte ones).
    Any,
    /// A character class, pre-expanded to its candidate characters.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

#[derive(Debug)]
struct Quant {
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on regex constructs outside the supported subset.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for (atom, quant) in &atoms {
        let count = if quant.min == quant.max {
            quant.min
        } else {
            rng.usize_in(quant.min..quant.max + 1)
        };
        for _ in 0..count {
            out.push(match atom {
                Atom::Any => ANY_POOL[rng.usize_in(0..ANY_POOL.len())],
                Atom::Class(chars) => chars[rng.usize_in(0..chars.len())],
                Atom::Literal(c) => *c,
            });
        }
    }
    out
}

/// Candidate characters for `.`: printable ASCII plus a handful of
/// multi-byte characters so UTF-8 handling gets exercised.
const ANY_POOL: &[char] = &[
    ' ', '!', '"', '#', '$', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', '0', '1',
    '2', '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?', '@', 'A', 'B', 'C',
    'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R', 'S', 'T', 'U',
    'V', 'W', 'X', 'Y', 'Z', '[', '\\', ']', '^', '_', '`', 'a', 'b', 'c', 'd', 'e', 'f', 'g',
    'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's', 't', 'u', 'v', 'w', 'x', 'y',
    'z', '{', '|', '}', '~', 'é', 'λ', '中', '𝛼',
];

fn parse(pattern: &str) -> Vec<(Atom, Quant)> {
    let mut chars = pattern.chars().peekable();
    let mut out = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '[' => parse_class(&mut chars, pattern),
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                Atom::Literal(unescape(escaped))
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex construct `{c}` in pattern {pattern:?}")
            }
            other => Atom::Literal(other),
        };
        let quant = parse_quant(&mut chars, pattern, matches!(atom, Atom::Any));
        out.push((atom, quant));
    }
    out
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Atom {
    let negated = chars.peek() == Some(&'^');
    if negated {
        chars.next();
    }
    let mut members: Vec<char> = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        match c {
            ']' => break,
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                members.push(unescape(escaped));
            }
            lo => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    let hi = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated range in pattern {pattern:?}"));
                    assert!(hi != ']', "dangling `-` in class in pattern {pattern:?}");
                    assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                    members.extend((lo..=hi).filter(char::is_ascii));
                } else {
                    members.push(lo);
                }
            }
        }
    }
    if negated {
        let candidates: Vec<char> = (' '..='~').filter(|c| !members.contains(c)).collect();
        assert!(
            !candidates.is_empty(),
            "negated class excludes all printable ASCII in pattern {pattern:?}"
        );
        Atom::Class(candidates)
    } else {
        assert!(!members.is_empty(), "empty class in pattern {pattern:?}");
        Atom::Class(members)
    }
}

fn parse_quant(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
    wide: bool,
) -> Quant {
    // `.*` gets a wider default span than `x*` so arbitrary-string
    // patterns produce interestingly long inputs.
    let star_max = if wide { 32 } else { 8 };
    match chars.peek() {
        Some('*') => {
            chars.next();
            Quant { min: 0, max: star_max }
        }
        Some('+') => {
            chars.next();
            Quant { min: 1, max: star_max }
        }
        Some('?') => {
            chars.next();
            Quant { min: 0, max: 1 }
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => panic!("unterminated quantifier in pattern {pattern:?}"),
                }
            }
            let (min, max) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or_else(|_| {
                        panic!("bad quantifier {{{spec}}} in pattern {pattern:?}")
                    }),
                    hi.trim().parse().unwrap_or_else(|_| {
                        panic!("bad quantifier {{{spec}}} in pattern {pattern:?}")
                    }),
                ),
                None => {
                    let n = spec.trim().parse().unwrap_or_else(|_| {
                        panic!("bad quantifier {{{spec}}} in pattern {pattern:?}")
                    });
                    (n, n)
                }
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            Quant { min, max }
        }
        _ => Quant { min: 1, max: 1 },
    }
}

#[cfg(test)]
mod tests {
    use crate::test_runner::TestRng;

    #[test]
    fn class_patterns_match_their_alphabet() {
        let mut rng = TestRng::for_test("class_patterns");
        for _ in 0..200 {
            let s = super::generate("[A-Za-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_alphabetic()), "{s:?}");
        }
    }

    #[test]
    fn negated_class_excludes_members() {
        let mut rng = TestRng::for_test("negated_class");
        for _ in 0..200 {
            let s = super::generate("[^\"<>]{0,12}", &mut rng);
            assert!(s.len() <= 12, "{s:?}");
            assert!(!s.contains(['"', '<', '>']), "{s:?}");
        }
    }

    #[test]
    fn dot_star_produces_varied_strings() {
        let mut rng = TestRng::for_test("dot_star");
        let all: Vec<String> = (0..50).map(|_| super::generate(".*", &mut rng)).collect();
        assert!(all.iter().any(String::is_empty));
        assert!(all.iter().any(|s| s.chars().count() > 10));
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn groups_are_rejected() {
        let mut rng = TestRng::for_test("groups");
        super::generate("(ab)+", &mut rng);
    }
}
