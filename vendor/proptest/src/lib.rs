//! Offline stand-in for `proptest`.
//!
//! Provides deterministic randomized property testing over the API subset
//! the workspace uses: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, the [`strategy::Strategy`] trait with `prop_map`,
//! [`strategy::Just`], `prop_oneof!`, `any::<bool>()`, numeric range
//! strategies, tuple strategies, `collection::{vec, btree_set}`,
//! `option::of`, and string strategies for simple regex patterns such as
//! `"[A-Za-z]{1,12}"` or `".*"`.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its inputs via `Debug` in the panic message where available, but is
//! not minimized), and `.proptest-regressions` files are ignored. Case
//! generation is seeded from the test's module path and name, so runs
//! are fully deterministic.

pub mod strategy;
pub mod test_runner;

/// Strategies over `String` from simple regex-like patterns.
pub mod string;

/// Strategies building collections from element strategies.
pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s whose cardinality is drawn from `size`.
    ///
    /// Like real proptest, duplicates from the element strategy are
    /// retried a bounded number of times; a run of collisions can yield a
    /// set smaller than requested (but never below one element when the
    /// requested minimum is nonzero).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.usize_in(self.size.clone());
            let mut out = BTreeSet::new();
            let mut tries = 0usize;
            while out.len() < target && tries < target * 10 + 32 {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

/// Strategies producing `Option`s.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `None` about a quarter of the time and `Some` of the
    /// inner strategy otherwise (matching real proptest's default
    /// weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.ratio(1, 4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Types with a canonical default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.ratio(1, 2)
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.usize_in(0..256) as u8
    }
}

/// Strategy for any value of an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the canonical strategy for `T` (e.g. `any::<bool>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Fails the current case with a message built from the arguments (or
/// from the condition's source text when no message is given).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left,
                            right
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left
                        ),
                    ));
                }
            }
        }
    };
}

/// Discards the current case (without failing) unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among the listed strategies (all must share a value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases && attempts < config.cases * 16 {
                    attempts += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "proptest case {} of `{}` failed: {}",
                                ran + 1,
                                stringify!($name),
                                message
                            );
                        }
                    }
                }
            }
        )*
    };
}
