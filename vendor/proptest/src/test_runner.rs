//! Test-case configuration, errors, and the deterministic RNG behind
//! strategy generation.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` — not a failure.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }

    /// A discard with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Reject(m) => write!(f, "rejected: {m}"),
            Self::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// What a property body returns after the macro wraps it.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator handed to strategies.
///
/// Seeded from the test's module path and name, so every run of a given
/// test binary generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates the RNG for the named test (FNV-1a of the name → seed).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: SmallRng::seed_from_u64(hash),
        }
    }

    /// Draws 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Draws uniformly from a range of any supported numeric type.
    pub fn sample<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
        self.inner.gen_range(range)
    }

    /// Draws a `usize` uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        self.inner.gen_range(range)
    }

    /// Returns `true` with probability `num / den`.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        self.inner.gen_range(0..u64::from(den)) < u64::from(num)
    }
}
