//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a finished value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Picks uniformly among several strategies (the `prop_oneof!` backing
/// type).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given strategies.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}
range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals act as regex-subset strategies producing `String`s.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
