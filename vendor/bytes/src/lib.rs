//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable byte buffer with a cursor (consuming reads
//! advance it, like the real crate's `Buf` impl); [`BytesMut`] is a
//! growable write buffer. Only the little-endian accessors the workspace
//! codec uses are provided.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// Read access to a sequence of bytes.
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;
    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt`.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Fills `dst` from the buffer, advancing past the copied bytes.
    ///
    /// # Panics
    ///
    /// Panics if the buffer has fewer than `dst.len()` bytes left.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copies the next `len` bytes out as a new [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics if the buffer has fewer than `len` bytes left.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An immutable, cheaply clonable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer holding a copy of `data`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
            pos: 0,
        }
    }

    /// Unread length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread bytes into a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self {
            data: Arc::from(data),
            pos: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer for building payloads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Written length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"tail");

        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 1 + 4 + 8 + 8 + 4);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), 42);
        assert_eq!(bytes.get_f64_le(), 1.5);
        let tail = bytes.copy_to_bytes(4);
        assert_eq!(tail.to_vec(), b"tail");
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn copy_to_slice_advances() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        let mut head = [0u8; 2];
        b.copy_to_slice(&mut head);
        assert_eq!(head, [1, 2]);
        assert_eq!(b.remaining(), 2);
        assert_eq!(&b[..], &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        b.advance(2);
    }

    #[test]
    fn nan_bits_survive() {
        let mut buf = BytesMut::new();
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        buf.put_f64_le(weird);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_f64_le().to_bits(), weird.to_bits());
    }
}
