//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the subset of serde the workspace actually uses: `Serialize` /
//! `Deserialize` traits over a JSON-shaped [`Value`] data model, derive
//! macros (re-exported from the in-tree `serde_derive`), and the container
//! attributes `transparent`, `from`, `try_from` and `into`.
//!
//! The trait shape is intentionally simpler than real serde (no
//! `Serializer` / `Visitor` plumbing): types convert to and from [`Value`]
//! directly, and `serde_json` renders values to text. That covers every
//! `#[derive(Serialize, Deserialize)]` + `serde_json::{to_string,
//! from_str, ...}` call in the workspace while staying a few hundred lines.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;
