//! Serialization: types → [`Value`] → JSON text.

use crate::value::Value;

/// A type that can convert itself into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic, like serde_json's BTreeMap.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Escapes a string into a JSON string literal (with surrounding quotes).
pub fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float the way serde_json does: integral values keep a
/// trailing `.0` so they read back as floats; everything else uses Rust's
/// shortest round-trip representation. Non-finite values become `null`.
pub fn format_f64(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&format_f64(*f)),
        Value::Str(s) => escape_str(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_str(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const PAD: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                escape_str(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Renders a value as compact JSON text.
#[must_use]
pub fn to_compact_string(v: &Value) -> String {
    let mut out = String::new();
    write_compact(v, &mut out);
    out
}

/// Renders a value as pretty-printed JSON text (2-space indent).
#[must_use]
pub fn to_pretty_string(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    out
}
