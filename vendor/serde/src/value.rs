//! The JSON-shaped data model shared by `serde` and `serde_json`.

use std::fmt;

/// A self-describing value: the intermediate representation every
/// `Serialize` impl produces and every `Deserialize` impl consumes.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent, negative).
    Int(i64),
    /// Unsigned integer (JSON number without fraction/exponent).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Insertion order is preserved (struct field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (last occurrence wins, like serde_json).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any kind of number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short description of the value's type for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            // Objects compare as maps: order-insensitive, keyed lookup.
            (Value::Object(a), Value::Object(b)) => {
                a.len() == b.len()
                    && a.iter().all(|(k, v)| other.get(k) == Some(v))
                    && b.iter().all(|(k, v)| self.get(k) == Some(v))
            }
            // Numbers compare across representations, like serde_json.
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::ser::to_compact_string(self))
    }
}
