//! Deserialization: [`Value`] → types.

use std::fmt;

use crate::value::Value;

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error with an arbitrary message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// "expected X, found Y" error.
    #[must_use]
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::custom(format!("expected {what}, found {}", found.kind()))
    }

    /// Missing-field error for struct deserialization.
    #[must_use]
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self::custom(format!("missing field `{field}` in {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` out of the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

fn int_from_value(v: &Value) -> Result<i128, Error> {
    match *v {
        Value::Int(i) => Ok(i128::from(i)),
        Value::UInt(u) => Ok(i128::from(u)),
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.3e18 => Ok(f as i128),
        ref other => Err(Error::expected("integer", other)),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = int_from_value(v)?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!(
                        "integer {raw} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

/// Deserializing into `&'static str` requires giving the string a
/// `'static` lifetime, which for owned JSON input is only possible by
/// leaking. The workspace uses `&'static str` fields solely for small
/// documented tables (genre names and similar), so the leak is bounded
/// and acceptable — mirroring how real serde only supports borrowed
/// strings when the input outlives the value.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*s.leak())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, found {s:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::expected(
                        concat!("array of length ", stringify!($len)),
                        other,
                    )),
                }
            }
        }
    )+};
}
de_tuple!(
    (1; 0 A),
    (2; 0 A, 1 B),
    (3; 0 A, 1 B, 2 C),
    (4; 0 A, 1 B, 2 C, 3 D)
);

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

// --- helpers used by the generated derive code ---------------------------

/// Views a value as an object, or errors with the container name.
pub fn as_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    match v {
        Value::Object(entries) => Ok(entries),
        other => Err(Error::custom(format!(
            "expected {ty} object, found {}",
            other.kind()
        ))),
    }
}

/// Views a value as an array of exactly `len` elements.
pub fn as_array<'v>(v: &'v Value, ty: &str, len: usize) -> Result<&'v [Value], Error> {
    match v {
        Value::Array(items) if items.len() == len => Ok(items),
        Value::Array(items) => Err(Error::custom(format!(
            "expected {ty} array of {len} elements, found {}",
            items.len()
        ))),
        other => Err(Error::custom(format!(
            "expected {ty} array, found {}",
            other.kind()
        ))),
    }
}

/// Extracts and deserializes one struct field. A missing field is retried
/// against `Value::Null` so `Option` fields default to `None`, mirroring
/// serde's behavior; any other type reports a missing-field error.
pub fn field<T: Deserialize>(
    entries: &[(String, Value)],
    ty: &str,
    name: &str,
) -> Result<T, Error> {
    match entries.iter().rev().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| Error::custom(format!("field `{name}` of {ty}: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| Error::missing_field(ty, name)),
    }
}

/// Extracts one struct field, falling back to `Default::default()` when
/// the key is absent. The derive maps `#[serde(default)]` fields here, so
/// structs can grow fields without invalidating previously serialized
/// data.
pub fn field_or_default<T: Deserialize + Default>(
    entries: &[(String, Value)],
    ty: &str,
    name: &str,
) -> Result<T, Error> {
    match entries.iter().rev().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| Error::custom(format!("field `{name}` of {ty}: {e}"))),
        None => Ok(T::default()),
    }
}
