//! Cross-crate pipeline tests: trace generation → sensing → fitting →
//! control → simulation → metrics, exercised through the public facade.

// Integration tests assert exact fixture values.
#![allow(clippy::float_cmp)]
use ecas::abr::{ObjectiveWeights, Online};
use ecas::power::model::PowerModel;
use ecas::power::task::TaskEnergyModel;
use ecas::qoe::model::QoeModel;
use ecas::qoe::study::{run_study_and_fit, SubjectiveStudy};
use ecas::sensors::vibration::vibration_level;
use ecas::sim::Simulator;
use ecas::trace::synth::context::{Context, ContextSchedule};
use ecas::trace::synth::SessionGenerator;
use ecas::trace::videos::EvalTraceSpec;
use ecas::types::ladder::BitrateLadder;
use ecas::types::units::Seconds;
use ecas::{Approach, ExperimentRunner};

#[test]
fn fitted_models_drive_the_online_algorithm() {
    let study = SubjectiveStudy::paper(99);
    let (params, _, _) = run_study_and_fit(&study).expect("paper design fits");
    assert!(params.is_valid());

    let session = EvalTraceSpec::table_v()[0].generate();
    let sim = Simulator::paper(BitrateLadder::evaluation());
    let mut fitted_controller = Online::new(
        ObjectiveWeights::paper(),
        TaskEnergyModel::new(PowerModel::paper(), Seconds::new(2.0)),
        QoeModel::new(params),
    );
    let with_fitted = sim.run(&session, &mut fitted_controller);
    let with_truth = sim.run(&session, &mut Online::paper());

    // The fit is close enough that behaviour is comparable: within 15% on
    // energy and 0.25 MOS on QoE.
    let energy_gap = (with_fitted.total_energy().value() - with_truth.total_energy().value()).abs()
        / with_truth.total_energy().value();
    assert!(energy_gap < 0.15, "energy gap {energy_gap}");
    let qoe_gap = (with_fitted.mean_qoe.value() - with_truth.mean_qoe.value()).abs();
    assert!(qoe_gap < 0.25, "QoE gap {qoe_gap}");
}

#[test]
fn vibration_sensing_agrees_with_trace_metadata() {
    for spec in EvalTraceSpec::table_v() {
        let session = spec.generate();
        let sensed = vibration_level(session.accel().as_slice()).unwrap();
        let meta = session.meta().avg_vibration;
        let gap = (sensed.value() - meta.value()).abs() / meta.value();
        assert!(
            gap < 0.05,
            "trace{}: sensed {sensed} vs metadata {meta}",
            spec.id
        );
    }
}

#[test]
fn task_records_expose_context_to_downstream_analysis() {
    let session = SessionGenerator::new(
        "ctx",
        ContextSchedule::new(vec![
            (Seconds::zero(), Context::QuietRoom),
            (Seconds::new(60.0), Context::MovingVehicle),
        ])
        .unwrap(),
        Seconds::new(120.0),
        5,
    )
    .generate();
    let runner = ExperimentRunner::paper();
    let r = runner.run(&session, &Approach::Ours);

    // Early tasks (quiet) must carry lower vibration estimates than late
    // tasks (vehicle).
    let early: Vec<f64> = r
        .tasks
        .iter()
        .filter(|t| t.download_start.value() < 50.0 && t.download_start.value() > 10.0)
        .map(|t| t.vibration.value())
        .collect();
    let late: Vec<f64> = r
        .tasks
        .iter()
        .filter(|t| t.download_start.value() > 80.0)
        .map(|t| t.vibration.value())
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&early) < 0.5 * mean(&late),
        "early vibration {:.2} vs late {:.2}",
        mean(&early),
        mean(&late)
    );

    // And the chosen bitrate should fall after the context switch.
    let early_bitrate = mean(
        &r.tasks
            .iter()
            .filter(|t| t.download_start.value() < 50.0 && t.download_start.value() > 20.0)
            .map(|t| t.bitrate.value())
            .collect::<Vec<_>>(),
    );
    let late_bitrate = mean(
        &r.tasks
            .iter()
            .filter(|t| t.download_start.value() > 80.0)
            .map(|t| t.bitrate.value())
            .collect::<Vec<_>>(),
    );
    assert!(
        late_bitrate < early_bitrate,
        "bitrate did not drop after boarding: {early_bitrate:.2} -> {late_bitrate:.2}"
    );
}

#[test]
fn all_approaches_complete_all_table_v_traces() {
    let runner = ExperimentRunner::paper();
    for spec in EvalTraceSpec::table_v() {
        let session = spec.generate();
        for approach in Approach::all() {
            let r = runner.run(&session, &approach);
            let expected_tasks = (session.meta().video_length.value() / 2.0).ceil() as usize;
            assert_eq!(
                r.tasks.len(),
                expected_tasks,
                "{} on trace{}",
                approach.label(),
                spec.id
            );
            assert!(r.total_energy().value() > 0.0);
            assert!((0.0..=5.0).contains(&r.mean_qoe.value()));
        }
    }
}

#[test]
fn facade_reexports_are_usable() {
    // The root crate exposes everything needed without reaching into
    // sub-crates by name.
    let _ladder = ecas::types::ladder::BitrateLadder::evaluation();
    let _model = ecas::qoe::model::QoeModel::paper();
    let _power = ecas::power::model::PowerModel::paper();
    let runner = ecas::ExperimentRunner::paper();
    assert_eq!(runner.eta(), 0.5);
}
