//! Integration tests for the ablation experiments: the sweeps must have
//! the shapes the design calls out.

use ecas::abr::{AdaptiveEta, Festive, Online, RateBased};
use ecas::sim::{PlayerConfig, Simulator};
use ecas::trace::videos::EvalTraceSpec;
use ecas::types::ladder::BitrateLadder;
use ecas::types::units::Seconds;
use ecas::{Approach, ExperimentRunner};

#[test]
fn eta_sweep_traces_a_pareto_front() {
    let session = EvalTraceSpec::table_v()[2].generate();
    let mut prev_energy = f64::INFINITY;
    let mut qoes = Vec::new();
    for eta in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let runner = ExperimentRunner::paper_with_eta(eta);
        let r = runner.run(&session, &Approach::Ours);
        assert!(
            r.total_energy().value() <= prev_energy + 1e-6,
            "energy not non-increasing at eta {eta}"
        );
        prev_energy = r.total_energy().value();
        qoes.push(r.mean_qoe.value());
    }
    // QoE falls from the eta=0 end to the eta=1 end.
    assert!(qoes.first().unwrap() > qoes.last().unwrap());
}

#[test]
fn optimal_eta_sweep_is_monotone_in_objective_components() {
    let session = EvalTraceSpec::table_v()[0].generate();
    let mut prev_energy = f64::INFINITY;
    for eta in [0.0, 0.5, 1.0] {
        let runner = ExperimentRunner::paper_with_eta(eta);
        let r = runner.run(&session, &Approach::Optimal);
        assert!(r.total_energy().value() <= prev_energy + 1e-6);
        prev_energy = r.total_energy().value();
    }
}

#[test]
fn small_buffers_punish_fixed_bitrate_but_not_ours() {
    let session = EvalTraceSpec::table_v()[2].generate();
    let make = |b: f64| {
        Simulator::new(
            PlayerConfig::paper().with_buffer_threshold(Seconds::new(b)),
            BitrateLadder::evaluation(),
            ecas::power::model::PowerModel::paper(),
            ecas::qoe::model::QoeModel::paper(),
        )
    };
    let tight = make(6.0);
    let runner = ExperimentRunner::new(tight, 0.5);
    let youtube = runner.run(&session, &Approach::Youtube);
    let ours = runner.run(&session, &Approach::Ours);
    assert!(
        youtube.total_rebuffer.value() > 20.0,
        "youtube should stall badly at B=6s, got {}",
        youtube.total_rebuffer
    );
    assert!(
        ours.total_rebuffer.value() < 0.2 * youtube.total_rebuffer.value(),
        "ours should nearly avoid stalls, got {}",
        ours.total_rebuffer
    );
}

#[test]
fn rate_based_switches_far_more_than_festive() {
    let session = EvalTraceSpec::table_v()[2].generate();
    let sim = Simulator::paper(BitrateLadder::evaluation());
    let naive = sim.run(&session, &mut RateBased::new());
    let smoothed = sim.run(&session, &mut Festive::new());
    assert!(
        naive.switches >= 2 * smoothed.switches,
        "rate-based {} vs festive {}",
        naive.switches,
        smoothed.switches
    );
}

#[test]
fn adaptive_eta_is_weakly_better_than_fixed_on_mixed_traces() {
    // Across the Table V set the adaptive variant should not lose on both
    // axes simultaneously: it either saves at least as much energy or
    // keeps at least as much QoE.
    let sim = Simulator::paper(BitrateLadder::evaluation());
    let mut adaptive_better_somewhere = false;
    for spec in EvalTraceSpec::table_v() {
        let session = spec.generate();
        let adaptive = sim.run(&session, &mut AdaptiveEta::new());
        let fixed = sim.run(&session, &mut Online::paper());
        let worse_energy = adaptive.total_energy().value() > fixed.total_energy().value() * 1.02;
        let worse_qoe = adaptive.mean_qoe.value() < fixed.mean_qoe.value() - 0.05;
        assert!(
            !(worse_energy && worse_qoe),
            "adaptive dominated on trace{}",
            spec.id
        );
        if adaptive.mean_qoe.value() > fixed.mean_qoe.value() + 0.01
            || adaptive.total_energy().value() < fixed.total_energy().value() * 0.99
        {
            adaptive_better_somewhere = true;
        }
    }
    assert!(adaptive_better_somewhere, "adaptive never helped anywhere");
}

#[test]
fn all_extension_approaches_sit_between_youtube_and_optimal_energy() {
    let session = EvalTraceSpec::table_v()[2].generate();
    let runner = ExperimentRunner::paper();
    let youtube = runner.run(&session, &Approach::Youtube).total_energy();
    for approach in [
        Approach::Bola,
        Approach::Mpc,
        Approach::Pid,
        Approach::RateBased,
        Approach::AdaptiveEta,
    ] {
        let r = runner.run(&session, &approach);
        assert!(
            r.total_energy() <= youtube,
            "{} used more than Youtube",
            approach.label()
        );
        assert!(
            r.mean_qoe.value() > 3.0,
            "{} collapsed QoE",
            approach.label()
        );
    }
}
