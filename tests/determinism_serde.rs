//! Determinism and serialization guarantees across the whole stack.

use ecas::trace::io::TraceFormat;
use ecas::trace::videos::EvalTraceSpec;
use ecas::trace::SessionTrace;
use ecas::{Approach, ExecPolicy, ExperimentRunner};

#[test]
fn whole_evaluation_is_deterministic() {
    let run = || {
        let sessions: Vec<_> = EvalTraceSpec::table_v()[..2]
            .iter()
            .map(EvalTraceSpec::generate)
            .collect();
        let runner = ExperimentRunner::paper();
        runner.run_grid(&sessions, &Approach::paper_set(), &ExecPolicy::Sequential)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn session_results_serde_roundtrip() {
    let session = EvalTraceSpec::table_v()[0].generate();
    let runner = ExperimentRunner::paper();
    for approach in Approach::paper_set() {
        let result = runner.run(&session, &approach);
        let json = serde_json::to_string(&result).unwrap();
        let back: ecas::sim::SessionResult = serde_json::from_str(&json).unwrap();
        assert_eq!(result, back);
    }
}

#[test]
fn comparison_summary_serde_roundtrip() {
    let sessions: Vec<_> = EvalTraceSpec::table_v()[..1]
        .iter()
        .map(EvalTraceSpec::generate)
        .collect();
    let runner = ExperimentRunner::paper();
    let summary = ecas::ComparisonSummary::evaluate(&runner, &sessions, &Approach::paper_set());
    let json = serde_json::to_string(&summary).unwrap();
    let back: ecas::ComparisonSummary = serde_json::from_str(&json).unwrap();
    assert_eq!(summary, back);
}

#[test]
fn traces_roundtrip_through_both_codecs() {
    let session = EvalTraceSpec::table_v()[1].generate();

    let mut json_buf = Vec::new();
    session.write_to(&mut json_buf, TraceFormat::Json).unwrap();
    assert_eq!(
        session,
        SessionTrace::read_from(json_buf.as_slice(), TraceFormat::Json).unwrap()
    );

    let mut bin = Vec::new();
    session.write_to(&mut bin, TraceFormat::Binary).unwrap();
    assert_eq!(
        session,
        SessionTrace::read_from(bin.as_slice(), TraceFormat::Binary).unwrap()
    );
}

#[test]
fn parallel_and_sequential_grids_agree() {
    let sessions: Vec<_> = EvalTraceSpec::table_v()[..3]
        .iter()
        .map(EvalTraceSpec::generate)
        .collect();
    let runner = ExperimentRunner::paper();
    let approaches = [Approach::Youtube, Approach::Festive, Approach::Ours];
    assert_eq!(
        runner.run_grid(&sessions, &approaches, &ExecPolicy::Sequential),
        runner.run_grid(&sessions, &approaches, &ExecPolicy::parallel())
    );
}
