//! End-to-end assertions that the reproduction preserves the paper's
//! qualitative results (the "shape" criteria listed in DESIGN.md §3).

use ecas::trace::videos::EvalTraceSpec;
use ecas::{Approach, ComparisonSummary, ExperimentRunner};

fn summary() -> ComparisonSummary {
    let sessions: Vec<_> = EvalTraceSpec::table_v()
        .iter()
        .map(EvalTraceSpec::generate)
        .collect();
    let runner = ExperimentRunner::paper();
    ComparisonSummary::evaluate(&runner, &sessions, &Approach::paper_set())
}

#[test]
fn youtube_consumes_most_energy_on_every_trace() {
    let summary = summary();
    for t in &summary.traces {
        let youtube = t.approach(Approach::Youtube).unwrap().energy;
        for m in &t.approaches {
            assert!(
                m.energy <= youtube,
                "{} beat Youtube's energy on {}",
                m.approach.label(),
                t.trace
            );
        }
    }
}

#[test]
fn youtube_has_best_qoe_on_every_trace() {
    // A 0.05-MOS tolerance absorbs the occasional trace where Youtube's
    // fixed 5.8 Mbps stalls briefly in a deep fade while an adaptive
    // baseline rides it out (the paper's Youtube app prebuffers more
    // aggressively than a strict DASH player).
    let summary = summary();
    for t in &summary.traces {
        let youtube = t.approach(Approach::Youtube).unwrap().qoe;
        for m in &t.approaches {
            assert!(
                m.qoe <= youtube + 0.05,
                "{} beat Youtube's QoE on {} ({:.3} vs {youtube:.3})",
                m.approach.label(),
                t.trace,
                m.qoe
            );
        }
    }
}

#[test]
fn ours_and_optimal_save_far_more_than_baselines() {
    let summary = summary();
    let ours = summary.mean_energy_saving(Approach::Ours);
    let optimal = summary.mean_energy_saving(Approach::Optimal);
    let festive = summary.mean_energy_saving(Approach::Festive);
    let bba = summary.mean_energy_saving(Approach::Bba);
    // Paper: 33% / 36% vs 7% / 4%.
    assert!(ours > 0.15, "ours saved only {ours:.3}");
    assert!(optimal > 0.15, "optimal saved only {optimal:.3}");
    assert!(
        ours > 3.0 * festive,
        "ours ({ours:.3}) vs festive ({festive:.3})"
    );
    assert!(ours > 3.0 * bba, "ours ({ours:.3}) vs bba ({bba:.3})");
}

#[test]
fn extra_energy_savings_match_paper_shape() {
    let summary = summary();
    // Paper: 77% / 80% for Ours/Optimal vs 15% / 8% for FESTIVE/BBA.
    let ours = summary.mean_extra_energy_saving(Approach::Ours);
    let optimal = summary.mean_extra_energy_saving(Approach::Optimal);
    let festive = summary.mean_extra_energy_saving(Approach::Festive);
    let bba = summary.mean_extra_energy_saving(Approach::Bba);
    assert!(ours > 0.5, "ours extra saving {ours:.3}");
    assert!(optimal > 0.5, "optimal extra saving {optimal:.3}");
    assert!(festive < 0.25, "festive extra saving {festive:.3}");
    assert!(bba < 0.25, "bba extra saving {bba:.3}");
}

#[test]
fn ours_qoe_degradation_is_small() {
    let summary = summary();
    // Paper: 3.5% average degradation; we allow up to 10%.
    let deg = summary.mean_qoe_degradation(Approach::Ours);
    assert!(deg < 0.10, "ours degraded QoE by {deg:.3}");
    assert!(deg > 0.0, "ours cannot beat Youtube's QoE on average");
}

#[test]
fn quiet_trace_has_best_qoe_for_every_approach() {
    // "the QoE for trace 2 is much better for all approaches due to its
    // low vibration level" (Section V-C).
    let summary = summary();
    let trace2 = &summary.traces[1];
    for a in Approach::paper_set() {
        let q2 = trace2.approach(a).unwrap().qoe;
        for t in &summary.traces {
            if t.trace == "trace2" {
                continue;
            }
            let q = t.approach(a).unwrap().qoe;
            assert!(
                q2 > q,
                "{}: trace2 QoE {q2:.3} not above {} QoE {q:.3}",
                a.label(),
                t.trace
            );
        }
    }
}

#[test]
fn optimal_minimizes_the_objective_among_all_approaches() {
    use ecas::abr::OptimalPlanner;
    use ecas::types::ladder::BitrateLadder;

    let session = EvalTraceSpec::table_v()[0].generate();
    let runner = ExperimentRunner::paper();
    let planner = OptimalPlanner::paper(BitrateLadder::evaluation());
    let plan = planner.plan(&session);

    for approach in Approach::paper_set() {
        let result = runner.run(&session, &approach);
        let levels: Vec<_> = result.tasks.iter().map(|t| t.level).collect();
        let objective = planner.objective_of(&session, &levels);
        assert!(
            plan.objective <= objective + 1e-9,
            "optimal objective {} worse than {}'s {objective}",
            plan.objective,
            approach.label()
        );
    }
}

#[test]
fn nobody_rebuffers_catastrophically() {
    let summary = summary();
    for t in &summary.traces {
        for m in &t.approaches {
            assert!(
                m.rebuffer_seconds.value() < 60.0,
                "{} stalled {:.0}s on {}",
                m.approach.label(),
                m.rebuffer_seconds.value(),
                t.trace
            );
        }
    }
}

#[test]
fn adaptive_approaches_never_stall_while_youtube_may() {
    let summary = summary();
    for t in &summary.traces {
        for a in [Approach::Ours, Approach::Optimal] {
            let m = t.approach(a).unwrap();
            assert!(
                m.rebuffer_seconds.value() < 1.0,
                "{} stalled {:.1}s on {}",
                a.label(),
                m.rebuffer_seconds.value(),
                t.trace
            );
        }
    }
}
