//! "Everything composes" integration test: scenario configs, reports,
//! robustness, abandonment analysis, battery framing and the MPD layer all
//! working together through the facade.

// Integration tests assert exact fixture values.
#![allow(clippy::float_cmp)]
use ecas::power::battery::Battery;
use ecas::trace::mpd::Manifest;
use ecas::trace::synth::context::Context;
use ecas::types::units::Seconds;
use ecas::viewer::quit_analysis;
use ecas::{render_markdown, Approach, ExperimentRunner, Scenario, TraceSelection};

#[test]
fn scenario_json_roundtrip_runs_and_renders() {
    let scenario = Scenario::builder("tooling-smoke")
        .traces(TraceSelection::Synthetic {
            context: Context::MovingVehicle,
            seconds: 60.0,
            count: 2,
            base_seed: 40,
        })
        .approaches(vec![Approach::Youtube, Approach::Ours, Approach::AdaptiveEta])
        .build();
    // A user could write this JSON by hand; it must survive the trip.
    let json = serde_json::to_string_pretty(&scenario).unwrap();
    let parsed: Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(scenario, parsed);

    let summary = parsed.run();
    assert_eq!(summary.traces.len(), 2);
    let md = render_markdown(&parsed.name, &summary);
    assert!(md.contains("# tooling-smoke"));
    assert!(md.contains("Adaptive"));
    // The markdown tables parse as rows with consistent pipe counts.
    let pipe_counts: Vec<usize> = md
        .lines()
        .filter(|l| l.starts_with('|'))
        .map(|l| l.matches('|').count())
        .collect();
    assert!(!pipe_counts.is_empty());
}

#[test]
fn battery_and_abandonment_compose_with_the_runner() {
    let sessions = TraceSelection::TableVSubset(vec![1]).sessions();
    let runner = ExperimentRunner::paper();
    let result = runner.run(&sessions[0], &Approach::Ours);

    // Battery framing.
    let mut battery = Battery::nexus_5x();
    let drained = battery.drain(result.total_energy());
    assert_eq!(drained, result.total_energy());
    assert!(
        battery.state_of_charge() > 0.9,
        "one session is a few percent"
    );

    // Abandonment analysis at mid-session.
    let quit = Seconds::new(result.wall_time.value() / 2.0);
    let q = quit_analysis(&result, Seconds::new(2.0), quit);
    assert!(q.watched.value() > 0.0);
    assert!(q.wasted_data.value() < result.downloaded.value());
}

#[test]
fn manifest_drives_an_end_to_end_run() {
    let sessions = TraceSelection::Synthetic {
        context: Context::Walking,
        seconds: 60.0,
        count: 1,
        base_seed: 77,
    }
    .sessions();
    // Serialize the evaluation setup to an MPD and back, then stream with
    // the parsed manifest's ladder.
    let manifest = Manifest::paper(Seconds::new(60.0));
    let parsed = Manifest::parse(&manifest.to_xml()).unwrap();
    let sim = ecas::sim::Simulator::from_manifest(&parsed);
    let mut controller = ecas::abr::Online::paper();
    let result = sim.run(&sessions[0], &mut controller);
    assert_eq!(result.tasks.len(), parsed.segment_count());
}

#[test]
fn robustness_rows_cover_requested_approaches() {
    let runner = ExperimentRunner::paper();
    let rows = ecas::table_v_robustness(&runner, &[Approach::Youtube, Approach::Festive], &[0]);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].approach, Approach::Youtube);
    assert_eq!(rows[1].approach, Approach::Festive);
    // Single-seed stats have zero variance.
    assert_eq!(rows[1].energy_saving.std, 0.0);
    assert_eq!(rows[1].energy_saving.n, 1);
}
