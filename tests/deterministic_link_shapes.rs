//! Paper-shape assertions on a *deterministic* link (periodic fade dips),
//! where the expected behaviour of every approach is analytically clear:
//!
//! * Youtube rides the 8 Mbps baseline and survives the dips on buffer;
//! * FESTIVE's harmonic window gets poisoned by each dip and downshifts
//!   for a while (the paper's ~7 % saving);
//! * BBA recovers faster than FESTIVE (the paper's ~4 %);
//! * Ours drops to ~480p because of vehicle vibration (the paper's ~33 %).
//!
//! Unlike the stochastic Table V regenerations, this fixture has no seed
//! sensitivity at all.

use ecas::trace::io::read_mahimahi;
use ecas::trace::sample::SignalSample;
use ecas::trace::series::TimeSeries;
use ecas::trace::session::{SessionTrace, TraceMeta};
use ecas::trace::synth::accel::AccelTraceGenerator;
use ecas::trace::synth::context::{Context, ContextSchedule};
use ecas::types::units::{Dbm, MegaBytes, MetersPerSec2, Seconds};
use ecas::{Approach, ExperimentRunner};

fn periodic_dip_session() -> SessionTrace {
    let mut mahimahi = String::new();
    let mut t_ms = 0.0f64;
    while t_ms < 240_000.0 {
        let sec = t_ms / 1000.0;
        let mbps = if (sec / 45.0).fract() < 10.0 / 45.0 {
            1.0
        } else {
            8.0
        };
        mahimahi.push_str(&format!("{}\n", t_ms as u64));
        t_ms += 1500.0 * 8.0 / (mbps * 1000.0);
    }
    let network = read_mahimahi(mahimahi.as_bytes(), Seconds::new(1.0)).unwrap();
    let video_length = Seconds::new(240.0);
    let accel = AccelTraceGenerator::new(
        ContextSchedule::constant(Context::MovingVehicle),
        video_length,
        99,
    )
    .generate();
    let signal =
        TimeSeries::new(vec![SignalSample::new(Seconds::zero(), Dbm::new(-102.0))]).unwrap();
    SessionTrace::new(
        TraceMeta {
            name: "periodic-dips".into(),
            video_length,
            data_size: MegaBytes::new(100.0),
            avg_vibration: MetersPerSec2::new(6.0),
            description: "deterministic fixture".into(),
            seed: None,
        },
        network,
        signal,
        accel,
    )
    .unwrap()
}

#[test]
fn deterministic_link_reproduces_paper_savings_bands() {
    let session = periodic_dip_session();
    let runner = ExperimentRunner::paper();
    let youtube = runner.run(&session, &Approach::Youtube);
    let saving = |a: Approach| {
        let r = runner.run(&session, &a);
        1.0 - r.total_energy().value() / youtube.total_energy().value()
    };

    let festive = saving(Approach::Festive);
    let bba = saving(Approach::Bba);
    let ours = saving(Approach::Ours);
    let optimal = saving(Approach::Optimal);

    // Paper: FESTIVE 7 %, BBA 4 %, Ours 33 %, Optimal 36 %.
    assert!((0.03..=0.12).contains(&festive), "festive saving {festive}");
    assert!((0.02..=0.10).contains(&bba), "bba saving {bba}");
    assert!(
        festive > bba,
        "festive ({festive}) should out-save bba ({bba}) here"
    );
    assert!((0.22..=0.42).contains(&ours), "ours saving {ours}");
    assert!((0.22..=0.42).contains(&optimal), "optimal saving {optimal}");
}

#[test]
fn deterministic_link_qoe_ordering_matches_paper() {
    let session = periodic_dip_session();
    let runner = ExperimentRunner::paper();
    let qoe = |a: Approach| runner.run(&session, &a).mean_qoe.value();

    let youtube = qoe(Approach::Youtube);
    let festive = qoe(Approach::Festive);
    let bba = qoe(Approach::Bba);
    let ours = qoe(Approach::Ours);
    let optimal = qoe(Approach::Optimal);

    // Youtube best; ours degrades a few percent; optimal sits between.
    assert!(youtube >= festive && youtube >= bba && youtube >= ours);
    let degradation = 1.0 - ours / youtube;
    assert!(
        (0.0..=0.12).contains(&degradation),
        "ours degradation {degradation}"
    );
    assert!(optimal >= ours - 0.02, "optimal {optimal} vs ours {ours}");
}

#[test]
fn nobody_stalls_on_the_deterministic_link() {
    let session = periodic_dip_session();
    let runner = ExperimentRunner::paper();
    for a in Approach::paper_set() {
        let r = runner.run(&session, &a);
        assert!(
            r.total_rebuffer.value() < 2.0,
            "{} stalled {:.1}s",
            a.label(),
            r.total_rebuffer.value()
        );
    }
}
