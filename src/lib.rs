//! Facade crate: re-exports the `ecas-core` public API.
pub use ecas_core::*;
