#!/usr/bin/env bash
# Offline-friendly CI gate. Everything this script needs is vendored in-tree
# (see vendor/), so it must pass with no network access and no extra tools
# beyond a stock Rust toolchain.
#
# Usage: scripts/ci.sh [--quick]
#   --quick   skip clippy (build + test + ecas-lint only)

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        *)
            echo "unknown argument: $arg" >&2
            exit 2
            ;;
    esac
done

echo "==> build (release)"
cargo build --release --workspace

echo "==> ecas-lint (workspace invariants)"
cargo run --release -p ecas-lint

echo "==> ecas-lint --json (machine-readable report -> lint-report.jsonl)"
cargo run --release -p ecas-lint -- --json > lint-report.jsonl

echo "==> test (workspace)"
cargo test -q --workspace

if [ "$quick" -eq 0 ]; then
    if command -v cargo-clippy >/dev/null 2>&1; then
        echo "==> clippy (deny warnings)"
        cargo clippy --workspace --all-targets --release -- -D warnings
    else
        echo "==> clippy not installed; skipping lint step"
    fi
fi

echo "==> smoke: evaluate --obs"
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
./target/release/evaluate --obs "$obs_dir" >/dev/null
for artifact in manifest.json metrics.txt events timelines; do
    if [ ! -e "$obs_dir/$artifact" ]; then
        echo "missing observability artifact: $artifact" >&2
        exit 1
    fi
done

echo "==> smoke: warm result cache (100% hits, byte-identical output)"
cache_dir="$obs_dir/cache"
./target/release/evaluate --cache-dir "$cache_dir" \
    > "$obs_dir/eval_cold.txt" 2> "$obs_dir/eval_cold.log"
./target/release/evaluate --cache-dir "$cache_dir" \
    > "$obs_dir/eval_warm.txt" 2> "$obs_dir/eval_warm.log"
if ! cmp -s "$obs_dir/eval_cold.txt" "$obs_dir/eval_warm.txt"; then
    echo "warm-cache evaluate output differs from the cold run" >&2
    diff "$obs_dir/eval_cold.txt" "$obs_dir/eval_warm.txt" >&2 || true
    exit 1
fi
if ! grep -Eq 'cache: hits=[1-9][0-9]* misses=0 corrupt=0' "$obs_dir/eval_warm.log"; then
    echo "warm-cache evaluate was not served 100% from the cache" >&2
    cat "$obs_dir/eval_warm.log" >&2
    exit 1
fi

echo "==> bench binaries go through the shared CLI (no direct env::args)"
if grep -Rn 'env::args' crates/bench/src/bin/; then
    echo "bench binaries must parse arguments via ecas_bench::cli" >&2
    exit 1
fi

echo "==> smoke: fault injection (determinism + liveness)"
./target/release/fault_sweep --smoke > "$obs_dir/fault_sweep_1.txt"
./target/release/fault_sweep --smoke > "$obs_dir/fault_sweep_2.txt"
if ! cmp -s "$obs_dir/fault_sweep_1.txt" "$obs_dir/fault_sweep_2.txt"; then
    echo "fault sweep is not byte-identical across runs" >&2
    diff "$obs_dir/fault_sweep_1.txt" "$obs_dir/fault_sweep_2.txt" >&2 || true
    exit 1
fi
if ! grep -Eq 'total_retries=[1-9][0-9]*' "$obs_dir/fault_sweep_1.txt"; then
    echo "fault smoke produced zero retries; injection is dead" >&2
    cat "$obs_dir/fault_sweep_1.txt" >&2
    exit 1
fi

echo "==> smoke: replay oracle (determinism + zero divergences)"
./target/release/oracle_fuzz --smoke --seed 0xECA5 > "$obs_dir/oracle_fuzz_1.txt"
./target/release/oracle_fuzz --smoke --seed 0xECA5 > "$obs_dir/oracle_fuzz_2.txt"
if ! cmp -s "$obs_dir/oracle_fuzz_1.txt" "$obs_dir/oracle_fuzz_2.txt"; then
    echo "oracle fuzz is not byte-identical across runs" >&2
    diff "$obs_dir/oracle_fuzz_1.txt" "$obs_dir/oracle_fuzz_2.txt" >&2 || true
    exit 1
fi
if ! grep -Eq 'replay_checks=[1-9][0-9]* objective_checks=[1-9][0-9]* failures=0' "$obs_dir/oracle_fuzz_1.txt"; then
    echo "oracle smoke found divergences (or ran zero checks)" >&2
    cat "$obs_dir/oracle_fuzz_1.txt" >&2
    exit 1
fi

echo "==> smoke: fleet engine (determinism + parallel == sequential + liveness)"
./target/release/fleet --smoke > "$obs_dir/fleet_1.txt"
./target/release/fleet --smoke > "$obs_dir/fleet_2.txt"
./target/release/fleet --smoke --jobs 1 > "$obs_dir/fleet_seq.txt"
if ! cmp -s "$obs_dir/fleet_1.txt" "$obs_dir/fleet_2.txt"; then
    echo "fleet smoke is not byte-identical across runs" >&2
    diff "$obs_dir/fleet_1.txt" "$obs_dir/fleet_2.txt" >&2 || true
    exit 1
fi
if ! cmp -s "$obs_dir/fleet_1.txt" "$obs_dir/fleet_seq.txt"; then
    echo "fleet parallel aggregate differs from sequential (--jobs 1)" >&2
    diff "$obs_dir/fleet_1.txt" "$obs_dir/fleet_seq.txt" >&2 || true
    exit 1
fi
if ! grep -Eq 'users=100000 ' "$obs_dir/fleet_1.txt"; then
    echo "fleet smoke did not simulate the full 100k-user population" >&2
    cat "$obs_dir/fleet_1.txt" >&2
    exit 1
fi

echo "==> smoke: record corpus (batch-record + order-stable verify + self-diff)"
corpus_dir="$obs_dir/corpus"
./target/release/session batch-record --users 6 --seed 7 --duration 20 --batch 4 "$corpus_dir" >/dev/null
./target/release/session verify --jobs 4 "$corpus_dir" > "$obs_dir/corpus_par.txt"
./target/release/session verify --jobs 1 "$corpus_dir" > "$obs_dir/corpus_seq.txt"
if ! cmp -s "$obs_dir/corpus_par.txt" "$obs_dir/corpus_seq.txt"; then
    echo "parallel corpus verify differs from sequential (--jobs 1)" >&2
    diff "$obs_dir/corpus_par.txt" "$obs_dir/corpus_seq.txt" >&2 || true
    exit 1
fi
if ! grep -q 'records=6 failures=0' "$obs_dir/corpus_par.txt"; then
    echo "corpus verify did not pass all 6 recorded sessions" >&2
    cat "$obs_dir/corpus_par.txt" >&2
    exit 1
fi
./target/release/session diff "$corpus_dir" "$corpus_dir" > "$obs_dir/corpus_diff.txt"
if ! grep -q 'matched=6 diverged=0 only_a=0 only_b=0' "$obs_dir/corpus_diff.txt"; then
    echo "corpus self-diff reported divergences" >&2
    cat "$obs_dir/corpus_diff.txt" >&2
    exit 1
fi

echo "==> smoke: hot-path perf gate (work-counter determinism + collapse check)"
scripts/bench.sh

echo "==> golden: session-record corpus (replay + byte-identical re-record)"
scripts/golden.sh

echo "CI OK"
