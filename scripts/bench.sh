#!/usr/bin/env bash
# Performance smoke gate over the committed BENCH_core.json trajectory.
#
# Three checks, all offline:
#   1. build the perf binary (release);
#   2. determinism — two same-seed `--work-only` runs must print
#      byte-identical work counters;
#   3. regression — `perf --smoke --check BENCH_core.json`: measured work
#      counters must match the committed baseline exactly, and measured
#      throughput medians must stay above committed/20 (hosts vary, so
#      only an order-of-magnitude collapse fails).
#
# Usage: scripts/bench.sh [--update]
#   --update   regenerate BENCH_core.json from this host instead of
#              checking against it (commit the result)

set -euo pipefail
cd "$(dirname "$0")/.."

update=0
for arg in "$@"; do
    case "$arg" in
        --update) update=1 ;;
        *)
            echo "unknown argument: $arg" >&2
            exit 2
            ;;
    esac
done

cargo build --release -q -p ecas-bench --bin perf

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "==> perf: work counters are deterministic across same-seed runs"
./target/release/perf --smoke --work-only > "$tmp/work_1.json"
./target/release/perf --smoke --work-only > "$tmp/work_2.json"
if ! cmp -s "$tmp/work_1.json" "$tmp/work_2.json"; then
    echo "work counters differ across two same-seed runs" >&2
    diff "$tmp/work_1.json" "$tmp/work_2.json" >&2 || true
    exit 1
fi

if [ "$update" -eq 1 ]; then
    echo "==> perf: regenerating BENCH_core.json (smoke profile)"
    ./target/release/perf --smoke --out BENCH_core.json > /dev/null
    exit 0
fi

echo "==> perf: regression gate against BENCH_core.json"
./target/release/perf --smoke --check BENCH_core.json > /dev/null
echo "bench OK"
