#!/usr/bin/env bash
# Golden session-record corpus (see DESIGN.md § 13).
#
#   scripts/golden.sh            verify the committed corpus (CI gate)
#   scripts/golden.sh --update   regenerate every fixture in place
#
# Verification is four blocking checks:
#   1. the golden/ directory listing matches the fixtures() table
#      exactly — no orphan directories, no missing fixtures (a glob
#      alone would silently pass over a deleted or extra fixture);
#   2. every committed record replays through the oracle and matches its
#      stored reference (`session verify`, failures=0);
#   3. one fixture re-recorded from its own scenario header is
#      byte-identical to the committed .ecasr;
#   4. the rendered report and manifest of every fixture match the
#      committed report.txt / manifest.json.
set -euo pipefail
cd "$(dirname "$0")/.."

SESSION=target/release/session
cargo build --release -p ecas-bench --bin session >/dev/null

# One line per fixture: <name>|<session record arguments>.
fixtures() {
    cat <<'EOF'
tablev1-ours|--tablev 1 --approach Ours
tablev2-ours|--tablev 2 --approach Ours
tablev3-ours|--tablev 3 --approach Ours
tablev4-festive|--tablev 4 --approach FESTIVE
tablev5-optimal|--tablev 5 --approach Optimal
tablev1-youtube|--tablev 1 --approach Youtube
tablev2-bba|--tablev 2 --approach BBA
commute-ours|--context commute --seconds 180 --seed 2 --approach Ours
tablev1-ours-fault|--tablev 1 --approach Ours --fault 0.5 --fault-seed 1
EOF
}

if [[ "${1:-}" == "--update" ]]; then
    while IFS='|' read -r name args; do
        dir="golden/$name"
        mkdir -p "$dir"
        # shellcheck disable=SC2086
        "$SESSION" record $args "$dir/record.ecasr"
        "$SESSION" inspect "$dir/record.ecasr" >"$dir/report.txt"
        "$SESSION" inspect --json "$dir/record.ecasr" >"$dir/manifest.json"
    done < <(fixtures)
    echo "golden corpus regenerated"
    exit 0
fi

echo "== golden: directory listing matches the fixture table =="
expected="$(fixtures | cut -d'|' -f1 | sort)"
actual="$(find golden -mindepth 1 -maxdepth 1 -type d | sed 's|^golden/||' | sort)"
if ! diff <(echo "$expected") <(echo "$actual") >&2; then
    echo "golden/ directories do not match fixtures() (see diff above)" >&2
    exit 1
fi
while IFS='|' read -r name _; do
    if [[ ! -f "golden/$name/record.ecasr" ]]; then
        echo "golden/$name/record.ecasr is missing" >&2
        exit 1
    fi
done < <(fixtures)

echo "== golden: replay every committed record =="
"$SESSION" verify golden/*/record.ecasr

echo "== golden: re-record tablev1-ours byte-for-byte =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
"$SESSION" rerecord golden/tablev1-ours/record.ecasr "$tmp/rerecord.ecasr"
cmp golden/tablev1-ours/record.ecasr "$tmp/rerecord.ecasr"

echo "== golden: rendered artifacts match committed =="
while IFS='|' read -r name _; do
    dir="golden/$name"
    "$SESSION" inspect "$dir/record.ecasr" | diff -u "$dir/report.txt" -
    "$SESSION" inspect --json "$dir/record.ecasr" | diff -u "$dir/manifest.json" -
done < <(fixtures)

echo "golden corpus OK"
