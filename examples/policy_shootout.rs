//! Run every implemented bitrate-adaptation policy — the paper's five plus
//! the BOLA/MPC/PID/rate-based/adaptive-eta extensions — over the full
//! Table V trace set and print a comparison table.
//!
//! ```sh
//! cargo run --release --example policy_shootout
//! ```

use ecas::trace::videos::EvalTraceSpec;
use ecas::{Approach, ComparisonSummary, ExperimentRunner};

fn main() {
    let sessions: Vec<_> = EvalTraceSpec::table_v()
        .iter()
        .map(EvalTraceSpec::generate)
        .collect();
    println!(
        "running {} approaches x {} traces in parallel...\n",
        Approach::all().len(),
        sessions.len()
    );

    let runner = ExperimentRunner::paper();
    let summary = ComparisonSummary::evaluate(&runner, &sessions, &Approach::all());

    println!(
        "{:<8} {:>10} {:>9} {:>14} {:>13} {:>10}",
        "policy", "energy", "QoE", "whole saving", "extra saving", "QoE loss"
    );
    println!("{}", "-".repeat(70));
    for a in Approach::all() {
        let mean_energy: f64 = summary
            .traces
            .iter()
            .map(|t| t.approach(a).expect("present").energy.value())
            .sum::<f64>()
            / summary.traces.len() as f64;
        println!(
            "{:<8} {:>8.0} J {:>9.2} {:>13.1}% {:>12.1}% {:>9.2}%",
            a.label(),
            mean_energy,
            summary.mean_qoe(a),
            100.0 * summary.mean_energy_saving(a),
            100.0 * summary.mean_extra_energy_saving(a),
            100.0 * summary.mean_qoe_degradation(a),
        );
    }

    println!();
    println!("per-trace winner by total energy:");
    for t in &summary.traces {
        let best = t
            .approaches
            .iter()
            .min_by(|x, y| x.energy.value().total_cmp(&y.energy.value()))
            .expect("non-empty");
        println!(
            "  {}: {} ({:.0} J)",
            t.trace,
            best.approach.label(),
            best.energy.value()
        );
    }
}
