//! Sweep the Eq. (11) weighting factor η and print the energy/QoE Pareto
//! front of the online algorithm — the knob a product would expose as a
//! "battery saver" slider.
//!
//! ```sh
//! cargo run --release --example pareto_sweep
//! ```

use ecas::trace::videos::EvalTraceSpec;
use ecas::{Approach, ExperimentRunner};

fn main() {
    let session = EvalTraceSpec::table_v()[4].generate(); // longest, mixed contexts
    println!(
        "Pareto sweep on {} ({:.0} s, avg vibration {:.1} m/s^2)\n",
        session.meta().name,
        session.meta().video_length.value(),
        session.meta().avg_vibration.value()
    );

    println!(
        "{:>5} {:>12} {:>8} {:>12}",
        "eta", "energy (J)", "QoE", "rebuffer(s)"
    );
    println!("{}", "-".repeat(42));
    let mut front: Vec<(f64, f64, f64)> = Vec::new();
    for i in 0..=10 {
        let eta = i as f64 / 10.0;
        let runner = ExperimentRunner::paper_with_eta(eta);
        let r = runner.run(&session, &Approach::Ours);
        println!(
            "{:>5.2} {:>12.0} {:>8.2} {:>12.1}",
            eta,
            r.total_energy().value(),
            r.mean_qoe.value(),
            r.total_rebuffer.value()
        );
        front.push((eta, r.total_energy().value(), r.mean_qoe.value()));
    }

    // Report the knee: the point with the best QoE-per-joule marginal
    // trade relative to the endpoints.
    let (e_min, e_max) = front
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &(_, e, _)| {
            (lo.min(e), hi.max(e))
        });
    let (q_min, q_max) = front
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &(_, _, q)| {
            (lo.min(q), hi.max(q))
        });
    let knee = front
        .iter()
        .max_by(|a, b| {
            let score = |&(_, e, q): &(f64, f64, f64)| {
                (q - q_min) / (q_max - q_min) - (e - e_min) / (e_max - e_min)
            };
            score(a).total_cmp(&score(b))
        })
        .expect("front is non-empty");
    println!(
        "\nknee of the front: eta = {:.2} ({:.0} J at QoE {:.2})",
        knee.0, knee.1, knee.2
    );
    println!("the paper's evaluation uses eta = 0.5 (energy and QoE weighted equally)");
}
