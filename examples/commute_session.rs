//! A realistic commute: walk → bus → walk → office, with the context
//! changing mid-stream. Shows how the online algorithm's bitrate follows
//! the context while a fixed player burns energy throughout.
//!
//! ```sh
//! cargo run --release --example commute_session
//! ```

use ecas::trace::synth::context::ContextSchedule;
use ecas::trace::synth::SessionGenerator;
use ecas::types::units::Seconds;
use ecas::{Approach, ExperimentRunner};

fn main() {
    let total = Seconds::new(600.0);
    let schedule = ContextSchedule::commute(total);
    let session = SessionGenerator::new("commute", schedule.clone(), total, 7)
        .description("10-minute commute: walk, bus, walk, office")
        .generate();

    println!("context schedule:");
    for (start, ctx) in schedule.iter() {
        println!("  from {:6.0} s: {}", start.value(), ctx);
    }
    println!();

    let runner = ExperimentRunner::paper();
    let ours = runner.run(&session, &Approach::Ours);
    let youtube = runner.run(&session, &Approach::Youtube);

    // Average the chosen bitrate of "ours" within each context phase.
    println!("mean chosen bitrate by phase (ours vs youtube is always 5.8):");
    let phases: Vec<_> = schedule.iter().collect();
    for (i, (start, ctx)) in phases.iter().enumerate() {
        let end = phases
            .get(i + 1)
            .map_or(total.value(), |(next, _)| next.value());
        let in_phase: Vec<f64> = ours
            .tasks
            .iter()
            .filter(|t| t.download_start.value() >= start.value() && t.download_start.value() < end)
            .map(|t| t.bitrate.value())
            .collect();
        if in_phase.is_empty() {
            continue;
        }
        let mean = in_phase.iter().sum::<f64>() / in_phase.len() as f64;
        println!(
            "  {:>14} [{:4.0}..{:4.0} s]: {:.2} Mbps over {} segments",
            ctx.to_string(),
            start.value(),
            end,
            mean,
            in_phase.len()
        );
    }

    println!();
    println!(
        "energy: ours {:.0} J vs youtube {:.0} J ({:.0}% saving)",
        ours.total_energy().value(),
        youtube.total_energy().value(),
        100.0 * (1.0 - ours.total_energy().value() / youtube.total_energy().value())
    );
    println!(
        "QoE:    ours {:.2} vs youtube {:.2} ({:.1}% degradation)",
        ours.mean_qoe.value(),
        youtube.mean_qoe.value(),
        100.0 * (1.0 - ours.mean_qoe.value() / youtube.mean_qoe.value())
    );
}
