//! Quickstart: stream one synthetic bus ride with the energy- and
//! context-aware online algorithm and print the session summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ecas::trace::synth::context::{Context, ContextSchedule};
use ecas::trace::synth::SessionGenerator;
use ecas::types::units::Seconds;
use ecas::{Approach, ExperimentRunner};

fn main() {
    // 1. Generate a five-minute session on a moving bus: a weak,
    //    fluctuating LTE link and a vibrating phone.
    let session = SessionGenerator::new(
        "bus-ride",
        ContextSchedule::constant(Context::MovingVehicle),
        Seconds::new(300.0),
        2024,
    )
    .description("quickstart demo: five minutes on a bus")
    .generate();

    // 2. Run the paper's online bitrate selector against it.
    let runner = ExperimentRunner::paper();
    let ours = runner.run(&session, &Approach::Ours);
    let youtube = runner.run(&session, &Approach::Youtube);

    // 3. Report.
    println!(
        "session: {} ({} tasks)",
        session.meta().name,
        ours.tasks.len()
    );
    println!(
        "context: avg vibration {:.1} m/s^2, mean link {:.1} Mbps, mean signal {:.1} dBm",
        session.meta().avg_vibration.value(),
        session.network().mean_throughput().value(),
        session.signal().mean_signal().value()
    );
    println!();
    for r in [&youtube, &ours] {
        println!(
            "{:<8}  energy {:7.1} J   mean QoE {:.2}   rebuffer {:5.1} s   switches {:3}   mean bitrate {:.2} Mbps",
            r.controller,
            r.total_energy().value(),
            r.mean_qoe.value(),
            r.total_rebuffer.value(),
            r.switches,
            r.mean_bitrate().value(),
        );
    }
    let saving = 1.0 - ours.total_energy().value() / youtube.total_energy().value();
    let degradation = 1.0 - ours.mean_qoe.value() / youtube.mean_qoe.value();
    println!();
    println!(
        "energy saving vs Youtube: {:.1}%  at a QoE cost of {:.1}%",
        100.0 * saving,
        100.0 * degradation
    );
}
