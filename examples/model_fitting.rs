//! Run the synthetic ITU-T P.910 subject panel and fit the QoE models
//! from the noisy ratings — the full Table III pipeline — then use the
//! *fitted* models (instead of the ground truth) inside the online
//! algorithm to show the pipeline is closed.
//!
//! ```sh
//! cargo run --release --example model_fitting
//! ```

use ecas::abr::{ObjectiveWeights, Online};
use ecas::power::model::PowerModel;
use ecas::power::task::TaskEnergyModel;
use ecas::qoe::model::QoeModel;
use ecas::qoe::study::{run_study_and_fit, SubjectiveStudy};
use ecas::sim::Simulator;
use ecas::trace::videos::EvalTraceSpec;
use ecas::types::ladder::BitrateLadder;
use ecas::types::units::{Mbps, Seconds};

fn main() {
    // 1. Twenty synthetic subjects rate ten videos at six bitrates in
    //    four vibration contexts.
    let study = SubjectiveStudy::paper(12345);
    let ratings = study.run();
    println!("panel produced {} ratings", ratings.len());

    // 2. Least-squares fit of both model components (Table III).
    let (fitted, quality_fit, impairment_fit) =
        run_study_and_fit(&study).expect("the paper design always fits");
    println!(
        "quality fit:    q0(r) = {:.3} - {:.3}*exp(-{:.3}*r^{:.3})   (rmse {:.3}, r2 {:.3})",
        fitted.quality.q_max,
        fitted.quality.a,
        fitted.quality.b,
        fitted.quality.p,
        quality_fit.rmse,
        quality_fit.r_squared
    );
    println!(
        "impairment fit: I(v,r) = {:.4} * v^{:.3} * r^{:.3}          (rmse {:.3}, r2 {:.3})",
        fitted.impairment.k,
        fitted.impairment.p,
        fitted.impairment.q,
        impairment_fit.rmse,
        impairment_fit.r_squared
    );

    // 3. Sanity-check the headline drops on the fitted model.
    let q0 = ecas::qoe::quality::OriginalQuality::new(fitted.quality);
    println!(
        "fitted room drop 1080p -> 480p: {:.1}% (paper: 12%)",
        100.0 * q0.relative_drop(Mbps::new(5.8), Mbps::new(1.5))
    );

    // 4. Drive the online algorithm with the *fitted* models on trace 1.
    let session = EvalTraceSpec::table_v()[0].generate();
    let sim = Simulator::paper(BitrateLadder::evaluation());
    let fitted_qoe = QoeModel::new(fitted);
    let mut controller = Online::new(
        ObjectiveWeights::paper(),
        TaskEnergyModel::new(PowerModel::paper(), Seconds::new(2.0)),
        fitted_qoe,
    );
    let with_fitted = sim.run(&session, &mut controller);
    let mut reference = Online::paper();
    let with_truth = sim.run(&session, &mut reference);
    println!();
    println!(
        "trace1 with fitted models: {:.0} J, QoE {:.2}",
        with_fitted.total_energy().value(),
        with_fitted.mean_qoe.value()
    );
    println!(
        "trace1 with ground truth:  {:.0} J, QoE {:.2}",
        with_truth.total_energy().value(),
        with_truth.mean_qoe.value()
    );
    println!("(the noisy-panel fit is close enough that decisions barely change)");
}
