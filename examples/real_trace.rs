//! Adopting a real network trace: build a session from a Mahimahi-style
//! packet trace (the format used by most public LTE datasets), attach
//! synthetic signal/accelerometer channels for the context, and compare
//! the policies on it.
//!
//! The example writes a small Mahimahi file itself so it runs
//! self-contained; point `load` at your own file to use real data.
//!
//! ```sh
//! cargo run --release --example real_trace
//! ```

use ecas::trace::io::read_mahimahi;
use ecas::trace::sample::{AccelSample, SignalSample};
use ecas::trace::series::TimeSeries;
use ecas::trace::session::{SessionTrace, TraceMeta};
use ecas::trace::synth::accel::AccelTraceGenerator;
use ecas::trace::synth::context::{Context, ContextSchedule};
use ecas::types::units::{Dbm, MegaBytes, MetersPerSec2, Seconds};
use ecas::{Approach, ExperimentRunner};

fn main() {
    // 1. A Mahimahi-style trace: one line per 1500-byte delivery
    //    opportunity (milliseconds). We synthesize a bursty 240 s link:
    //    8 Mbps baseline with multi-second outage-ish dips.
    let mut mahimahi = String::new();
    let mut t_ms = 0.0f64;
    while t_ms < 240_000.0 {
        let sec = t_ms / 1000.0;
        // Dips every ~45 s lasting 10 s at ~1 Mbps; otherwise ~8 Mbps.
        let mbps = if (sec / 45.0).fract() < 10.0 / 45.0 {
            1.0
        } else {
            8.0
        };
        let gap_ms = 1500.0 * 8.0 / (mbps * 1000.0);
        mahimahi.push_str(&format!("{}\n", t_ms as u64));
        t_ms += gap_ms;
    }

    // 2. Parse it into a throughput channel (1-second bins).
    let network =
        read_mahimahi(mahimahi.as_bytes(), Seconds::new(1.0)).expect("generated trace parses");
    println!(
        "imported {} bins spanning {:.0} s, mean {:.2} Mbps",
        network.len(),
        network.duration().value(),
        network.mean_throughput().value()
    );

    // 3. Attach context channels: this ride is a bus trip, so synthesize a
    //    vehicle accelerometer stream and a weak-signal channel.
    let video_length = Seconds::new(240.0);
    let accel = AccelTraceGenerator::new(
        ContextSchedule::constant(Context::MovingVehicle),
        video_length,
        99,
    )
    .generate();
    let signal = TimeSeries::new(vec![SignalSample::new(Seconds::zero(), Dbm::new(-102.0))])
        .expect("non-empty");

    let avg_vibration = {
        let mags: Vec<f64> = accel.iter().map(AccelSample::magnitude).collect();
        let mean = mags.iter().sum::<f64>() / mags.len() as f64;
        let var = mags.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / mags.len() as f64;
        MetersPerSec2::new(var.sqrt())
    };
    let session = SessionTrace::new(
        TraceMeta {
            name: "mahimahi-bus".into(),
            video_length,
            data_size: MegaBytes::new(100.0),
            avg_vibration,
            description: "imported mahimahi link + synthetic bus context".into(),
            seed: None,
        },
        network,
        signal,
        accel,
    )
    .expect("channels are non-empty");

    // 4. Compare policies on the imported link.
    let runner = ExperimentRunner::paper();
    println!();
    for approach in Approach::paper_set() {
        let r = runner.run(&session, &approach);
        println!(
            "{:<8} energy {:7.1} J   QoE {:.2}   rebuffer {:5.1} s   mean bitrate {:.2} Mbps",
            approach.label(),
            r.total_energy().value(),
            r.mean_qoe.value(),
            r.total_rebuffer.value(),
            r.mean_bitrate().value(),
        );
    }
}
