//! A "battery dashboard" for one streaming session: classify the watching
//! context live from the accelerometer, replay the session with and
//! without context awareness, and report the outcome in battery terms.
//!
//! ```sh
//! cargo run --release --example battery_dashboard
//! ```

use ecas::power::battery::Battery;
use ecas::sensors::activity::ActivityClassifier;
use ecas::sim::SessionEvent;
use ecas::trace::synth::context::ContextSchedule;
use ecas::trace::synth::SessionGenerator;
use ecas::types::units::Seconds;
use ecas::{Approach, ExperimentRunner};

fn main() {
    let total = Seconds::new(480.0);
    let session = SessionGenerator::new(
        "evening-commute",
        ContextSchedule::commute(total),
        total,
        31,
    )
    .description("8-minute commute home")
    .generate();

    // 1. Live context classification from the raw accelerometer channel.
    println!("context timeline (classified from the accelerometer):");
    let mut classifier = ActivityClassifier::new();
    let mut last_label = None;
    for sample in session.accel().iter() {
        classifier.push(*sample);
        let label = classifier.stable_context();
        if label != last_label && sample.time.value() > 6.0 {
            if let Some(ctx) = label {
                println!("  {:6.1} s: {}", sample.time.value(), ctx);
            }
            last_label = label;
        }
    }

    // 2. Replay with the context-aware selector, logging events.
    let runner = ExperimentRunner::paper();
    let mut ours_ctrl = Approach::Ours.controller(runner.simulator(), &session);
    let (ours, log) = runner.simulator().run_logged(&session, ours_ctrl.as_mut());
    let youtube = runner.run(&session, &Approach::Youtube);

    let stalls = log.stall_intervals();
    let idle_waits = log
        .iter()
        .filter(|e| matches!(e, SessionEvent::IdleWait { .. }))
        .count();
    println!(
        "\nsession events: {} total, {} stalls, {} buffer-full waits",
        log.len(),
        stalls.len(),
        idle_waits
    );

    // 3. Battery framing.
    let battery = Battery::nexus_5x();
    println!(
        "\nbattery impact (LG Nexus 5X, {:.0} J full):",
        battery.capacity().value()
    );
    for r in [&youtube, &ours] {
        println!(
            "  {:<8} {:6.0} J = {:4.1}% of the battery  (QoE {:.2})",
            r.controller,
            r.total_energy().value(),
            100.0 * battery.fraction_of_capacity(r.total_energy()),
            r.mean_qoe.value()
        );
    }
    let saved = youtube.total_energy().saturating_sub(ours.total_energy());
    let mut after_ride = Battery::nexus_5x();
    after_ride.drain(ours.total_energy());
    println!(
        "\ncontext awareness saved {:.0} J ({:.1}% of the battery) on this ride;",
        saved.value(),
        100.0 * battery.fraction_of_capacity(saved)
    );
    println!(
        "at a 2 W screen-on draw that buys {:.0} extra minutes of use.",
        (saved / ecas::types::units::Watts::new(2.0)).value() / 60.0
    );
    println!(
        "battery after the ride: {:.1}%",
        100.0 * after_ride.state_of_charge()
    );
}
